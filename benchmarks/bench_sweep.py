"""Search-space sweep throughput: scalar vs batched model engine.

Times a cold exhaustive sweep (full pruned space x register limits) of the
paper's j2d5pt and star3d1r search spaces through both engines, verifies the
answers are identical (same best configuration, exactly equal GFLOPS), and
measures the cold-campaign delta: one model-only campaign matrix (tune +
predict jobs) run once with the batched engines and once with everything
forced down the scalar path.  Results go to ``BENCH_sweep.json`` at the
repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--quick] [--check]

``--quick`` shrinks the grids for CI smoke runs; ``--check`` exits non-zero
if any engine pair diverges or the batch sweep speedup falls below 5x.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import model as model_pkg  # noqa: E402
from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore  # noqa: E402
from repro.ir.stencil import GridSpec  # noqa: E402
from repro.stencils.library import load_pattern  # noqa: E402
from repro.tuning.exhaustive import exhaustive_search  # noqa: E402
from repro.tuning.search_space import REGISTER_LIMITS, default_search_space  # noqa: E402

#: CI acceptance threshold for the batch/scalar cold-sweep speedup (the
#: observed ratio is far higher; 5x keeps the gate robust on noisy runners).
SWEEP_SPEEDUP_MIN = 5.0


@contextmanager
def _scalar_everything():
    """Force every engine decision down the scalar path.

    Patches the single engine-resolution choke point plus the scheduler's
    predict-batching predicate, so tuning, exhaustive sweeps and campaign
    predict jobs all run exactly as they did before the batch engine landed.
    """
    import repro.campaign.scheduler as scheduler_module
    import repro.model.batch as batch_module
    import repro.tuning.autotuner as autotuner_module
    import repro.tuning.exhaustive as exhaustive_module

    def scalar_resolve(engine, pattern):
        return "scalar"

    patched = [
        (batch_module, "resolve_engine", batch_module.resolve_engine),
        (autotuner_module, "resolve_engine", autotuner_module.resolve_engine),
        (exhaustive_module, "resolve_engine", exhaustive_module.resolve_engine),
        (scheduler_module, "predict_job_batchable", scheduler_module.predict_job_batchable),
    ]
    try:
        for module, name, _ in patched[:3]:
            setattr(module, name, scalar_resolve)
        scheduler_module.predict_job_batchable = lambda spec: False
        yield
    finally:
        for module, name, original in patched:
            setattr(module, name, original)


def bench_sweeps(quick: bool) -> list[dict]:
    """Cold full-space sweep of both paper spaces through both engines."""
    workloads = [
        ("j2d5pt", GridSpec((2048, 2048), 200) if quick else GridSpec((16384, 16384), 1000)),
        ("star3d1r", GridSpec((128, 128, 128), 200) if quick else GridSpec((512, 512, 512), 1000)),
    ]
    results = []
    for name, grid in workloads:
        pattern = load_pattern(name, "float")
        space = default_search_space(pattern)

        model_pkg.clear_model_caches()
        start = time.perf_counter()
        batched = exhaustive_search(pattern, grid, "V100", space=space, engine="batch")
        t_batch = time.perf_counter() - start

        model_pkg.clear_model_caches()
        start = time.perf_counter()
        scalar = exhaustive_search(pattern, grid, "V100", space=space, engine="scalar")
        t_scalar = time.perf_counter() - start

        identical = (
            batched.best_config == scalar.best_config
            and batched.best_gflops == scalar.best_gflops
            and batched.evaluated == scalar.evaluated
        )
        results.append(
            {
                "pattern": name,
                "grid": list(grid.interior),
                "time_steps": grid.time_steps,
                "space_size": space.size(),
                "register_limits": len(REGISTER_LIMITS),
                "evaluated": batched.evaluated,
                "identical": identical,
                "batch_seconds": t_batch,
                "scalar_seconds": t_scalar,
                "batch_configs_per_s": batched.evaluated / t_batch,
                "scalar_configs_per_s": scalar.evaluated / t_scalar,
                "speedup": t_scalar / t_batch,
            }
        )
    return results


def bench_campaign(quick: bool) -> dict:
    """Cold model-only campaign matrix: batched engines vs scalar-everything."""
    benchmarks = ("j2d5pt", "star3d1r") if quick else ("j2d5pt", "j2d9pt", "gradient2d", "star3d1r")
    spec = CampaignSpec(
        benchmarks=benchmarks,
        gpus=("V100", "P100"),
        dtypes=("float",),
        kinds=("tune", "predict"),
        time_steps=200 if quick else 1000,
        interior_2d=(2048, 2048) if quick else (16384, 16384),
        interior_3d=(128, 128, 128) if quick else (512, 512, 512),
    )

    def cold_run():
        model_pkg.clear_model_caches()
        with ResultStore(":memory:") as store:
            start = time.perf_counter()
            outcome = CampaignScheduler(spec, store).run()
            elapsed = time.perf_counter() - start
            records = store.export_records()
        return outcome, elapsed, records

    batch_outcome, t_batch, batch_records = cold_run()
    with _scalar_everything():
        scalar_outcome, t_scalar, scalar_records = cold_run()

    return {
        "jobs": batch_outcome.total,
        "kinds": list(spec.kinds),
        "benchmarks": list(benchmarks),
        "identical": batch_records == scalar_records,
        "batch_seconds": t_batch,
        "scalar_seconds": t_scalar,
        "batch_configs_per_s": batch_outcome.configs_per_s,
        "scalar_configs_per_s": scalar_outcome.configs_per_s,
        "speedup": t_scalar / t_batch,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on divergence or sweep speedup < 5x",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    print(f"== bench_sweep ({'quick' if args.quick else 'full'}) ==")
    sweeps = bench_sweeps(args.quick)
    for sweep in sweeps:
        print(
            f"{sweep['pattern']:<10}: batch {sweep['batch_configs_per_s']:10.0f} configs/s "
            f"(scalar {sweep['scalar_configs_per_s']:8.0f}) -> {sweep['speedup']:.1f}x "
            f"over {sweep['evaluated']} runs, identical={sweep['identical']}"
        )

    campaign = bench_campaign(args.quick)
    print(
        f"campaign  : batch {campaign['batch_seconds']:.2f}s "
        f"(scalar {campaign['scalar_seconds']:.2f}s) -> {campaign['speedup']:.1f}x "
        f"over {campaign['jobs']} cold jobs, identical={campaign['identical']}"
    )

    identical = all(sweep["identical"] for sweep in sweeps) and campaign["identical"]
    speedup_ok = all(sweep["speedup"] >= SWEEP_SPEEDUP_MIN for sweep in sweeps)
    met = identical and speedup_ok

    report = {
        "schema": "bench_sweep/v1",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": args.quick,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sweeps": sweeps,
        "campaign": campaign,
        "thresholds": {
            "sweep_speedup_min": SWEEP_SPEEDUP_MIN,
            "identical": identical,
            "met": met,
        },
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    print(
        f"thresholds (identical results, sweep >= {SWEEP_SPEEDUP_MIN}x): "
        f"{'MET' if met else 'NOT MET'}"
    )
    if args.check and not met:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
