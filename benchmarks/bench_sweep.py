"""Search-space sweep throughput: scalar vs batched model engine.

Times a cold exhaustive sweep (full pruned space x register limits) of the
paper's j2d5pt and star3d1r search spaces through both engines, verifies the
answers are identical (same best configuration, exactly equal GFLOPS), and
measures the cold-campaign delta: one model-only campaign matrix (tune +
predict jobs) run once with the batched engines and once with everything
forced down the scalar path.  Results go to ``BENCH_sweep.json`` at the
repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--quick] [--check]

``--quick`` shrinks the grids for CI smoke runs; ``--check`` exits non-zero
if any engine pair diverges, the batch sweep speedup falls below 5x, or
observability — metrics instrumentation plus an armed, actively sampling
profiler — adds more than 5% to the campaign wall time.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.common import write_bench  # noqa: E402
from repro import model as model_pkg  # noqa: E402
from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore  # noqa: E402
from repro.ir.stencil import GridSpec  # noqa: E402
from repro.stencils.library import load_pattern  # noqa: E402
from repro.tuning.exhaustive import exhaustive_search  # noqa: E402
from repro.tuning.search_space import REGISTER_LIMITS, default_search_space  # noqa: E402

#: CI acceptance threshold for the batch/scalar cold-sweep speedup (the
#: observed ratio is far higher; 5x keeps the gate robust on noisy runners).
SWEEP_SPEEDUP_MIN = 5.0

#: Maximum fraction the metrics instrumentation may add to campaign wall
#: time.  The obs layer observes per job/commit, never per config, so the
#: real overhead is far below this; 5% absorbs runner noise.
OVERHEAD_MAX = 0.05


@contextmanager
def _scalar_everything():
    """Force every engine decision down the scalar path.

    Patches the single engine-resolution choke point plus the scheduler's
    predict-batching predicate, so tuning, exhaustive sweeps and campaign
    predict jobs all run exactly as they did before the batch engine landed.
    """
    import repro.campaign.scheduler as scheduler_module
    import repro.model.batch as batch_module
    import repro.tuning.autotuner as autotuner_module
    import repro.tuning.exhaustive as exhaustive_module

    def scalar_resolve(engine, pattern):
        return "scalar"

    patched = [
        (batch_module, "resolve_engine", batch_module.resolve_engine),
        (autotuner_module, "resolve_engine", autotuner_module.resolve_engine),
        (exhaustive_module, "resolve_engine", exhaustive_module.resolve_engine),
        (scheduler_module, "predict_job_batchable", scheduler_module.predict_job_batchable),
    ]
    try:
        for module, name, _ in patched[:3]:
            setattr(module, name, scalar_resolve)
        scheduler_module.predict_job_batchable = lambda spec: False
        yield
    finally:
        for module, name, original in patched:
            setattr(module, name, original)


def bench_sweeps(quick: bool) -> list[dict]:
    """Cold full-space sweep of both paper spaces through both engines."""
    workloads = [
        ("j2d5pt", GridSpec((2048, 2048), 200) if quick else GridSpec((16384, 16384), 1000)),
        ("star3d1r", GridSpec((128, 128, 128), 200) if quick else GridSpec((512, 512, 512), 1000)),
    ]
    results = []
    for name, grid in workloads:
        pattern = load_pattern(name, "float")
        space = default_search_space(pattern)

        model_pkg.clear_model_caches()
        start = time.perf_counter()
        batched = exhaustive_search(pattern, grid, "V100", space=space, engine="batch")
        t_batch = time.perf_counter() - start

        model_pkg.clear_model_caches()
        start = time.perf_counter()
        scalar = exhaustive_search(pattern, grid, "V100", space=space, engine="scalar")
        t_scalar = time.perf_counter() - start

        identical = (
            batched.best_config == scalar.best_config
            and batched.best_gflops == scalar.best_gflops
            and batched.evaluated == scalar.evaluated
        )
        results.append(
            {
                "pattern": name,
                "grid": list(grid.interior),
                "time_steps": grid.time_steps,
                "space_size": space.size(),
                "register_limits": len(REGISTER_LIMITS),
                "evaluated": batched.evaluated,
                "identical": identical,
                "batch_seconds": t_batch,
                "scalar_seconds": t_scalar,
                "batch_configs_per_s": batched.evaluated / t_batch,
                "scalar_configs_per_s": scalar.evaluated / t_scalar,
                "speedup": t_scalar / t_batch,
            }
        )
    return results


def bench_campaign(quick: bool) -> dict:
    """Cold model-only campaign matrix: batched engines vs scalar-everything."""
    benchmarks = ("j2d5pt", "star3d1r") if quick else ("j2d5pt", "j2d9pt", "gradient2d", "star3d1r")
    spec = CampaignSpec(
        benchmarks=benchmarks,
        gpus=("V100", "P100"),
        dtypes=("float",),
        kinds=("tune", "predict"),
        time_steps=200 if quick else 1000,
        interior_2d=(2048, 2048) if quick else (16384, 16384),
        interior_3d=(128, 128, 128) if quick else (512, 512, 512),
    )

    def cold_run():
        model_pkg.clear_model_caches()
        with ResultStore(":memory:") as store:
            start = time.perf_counter()
            outcome = CampaignScheduler(spec, store).run()
            elapsed = time.perf_counter() - start
            records = store.export_records()
        return outcome, elapsed, records

    batch_outcome, t_batch, batch_records = cold_run()
    with _scalar_everything():
        scalar_outcome, t_scalar, scalar_records = cold_run()

    return {
        "jobs": batch_outcome.total,
        "kinds": list(spec.kinds),
        "benchmarks": list(benchmarks),
        "identical": batch_records == scalar_records,
        "batch_seconds": t_batch,
        "scalar_seconds": t_scalar,
        "batch_configs_per_s": batch_outcome.configs_per_s,
        "scalar_configs_per_s": scalar_outcome.configs_per_s,
        "speedup": t_scalar / t_batch,
    }


def bench_overhead(quick: bool, iterations: int = 80) -> dict:
    """Instrumentation overhead: the same campaign with metrics on and off.

    Runs the batched model-only campaign against the live default registry
    — with the sampling profiler armed *and actively sampling*, the worst
    observability-on case — and against :data:`NULL_REGISTRY` with the
    profiler off (every observe a no-op).  Cold single-campaign iterations
    of the two kinds are interleaved one-for-one (order flipping each
    round, so neither kind systematically rides warmer CPU state), and
    the overhead is the ratio of the per-kind *minimum* iteration times:
    scheduler and machine jitter are strictly additive, so the minima
    converge on the true floors while a mean or median would inherit
    whatever load the runner was under.
    """
    from repro.obs import NULL_REGISTRY, PROFILER, MetricsRegistry, set_registry

    benchmarks = ("j2d5pt", "star3d1r") if quick else ("j2d5pt", "j2d9pt", "gradient2d", "star3d1r")
    spec = CampaignSpec(
        benchmarks=benchmarks,
        gpus=("V100",),
        dtypes=("float",),
        kinds=("tune", "predict"),
        time_steps=200 if quick else 1000,
        interior_2d=(2048, 2048) if quick else (16384, 16384),
        interior_3d=(128, 128, 128) if quick else (512, 512, 512),
    )

    iterations = iterations if quick else max(4, iterations // 10)

    def cold_iteration() -> float:
        model_pkg.clear_model_caches()
        with ResultStore(":memory:") as store:
            start = time.perf_counter()
            CampaignScheduler(spec, store).run()
            return time.perf_counter() - start

    # One long-lived registry, as deployed: a fresh registry per iteration
    # would bill every series' first-touch allocation to the timed region,
    # which is start-up cost, not steady-state overhead.
    registry = MetricsRegistry()

    def instrumented_iteration() -> float:
        set_registry(registry)
        # Armed profiler: the scheduler's hot-path window really samples
        # during the run (the sampler period is shorter than one quick
        # campaign, so even the fastest iteration contains a tick) — the
        # gate covers streaming-era observability at its most expensive,
        # not just metric increments.  Holding our own acquisition keeps
        # the sampler-thread spawn/join outside the timed region: the
        # scheduler's window then just refcounts, as it does on real
        # campaigns whose seconds-long runs amortize the thread churn this
        # millisecond-sized benchmark campaign cannot.
        PROFILER.arm()
        PROFILER.start()
        try:
            return cold_iteration()
        finally:
            PROFILER.stop()
            PROFILER.disarm()

    def bare_iteration() -> float:
        set_registry(NULL_REGISTRY)
        return cold_iteration()

    instrumented, bare = [], []
    # Warmup both kinds: first-touch costs (model caches, registry series,
    # sampler thread) must not land on any timed iteration.
    bare_iteration()
    instrumented_iteration()
    try:
        for index in range(iterations):
            if index % 2 == 0:
                instrumented.append(instrumented_iteration())
                bare.append(bare_iteration())
            else:
                bare.append(bare_iteration())
                instrumented.append(instrumented_iteration())
    finally:
        PROFILER.disarm()
        set_registry(MetricsRegistry())

    def floor(times: list) -> float:
        # Mean of the k fastest: converges like the minimum but does not
        # hinge the whole estimate on a single lucky (or unlucky) sample.
        fastest = sorted(times)[: max(1, len(times) // 16)]
        return sum(fastest) / len(fastest)

    t_on, t_off = floor(instrumented), floor(bare)
    overhead = (t_on - t_off) / t_off if t_off > 0 else 0.0
    return {
        "jobs_per_run": len(benchmarks) * 2,  # tune + predict per benchmark
        "iterations_per_kind": iterations,
        "profiler_armed": True,
        "profiler_samples": PROFILER.samples,
        "instrumented_seconds": t_on,
        "null_registry_seconds": t_off,
        "overhead_fraction": overhead,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on divergence or sweep speedup < 5x",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    print(f"== bench_sweep ({'quick' if args.quick else 'full'}) ==")
    sweeps = bench_sweeps(args.quick)
    for sweep in sweeps:
        print(
            f"{sweep['pattern']:<10}: batch {sweep['batch_configs_per_s']:10.0f} configs/s "
            f"(scalar {sweep['scalar_configs_per_s']:8.0f}) -> {sweep['speedup']:.1f}x "
            f"over {sweep['evaluated']} runs, identical={sweep['identical']}"
        )

    campaign = bench_campaign(args.quick)
    print(
        f"campaign  : batch {campaign['batch_seconds']:.2f}s "
        f"(scalar {campaign['scalar_seconds']:.2f}s) -> {campaign['speedup']:.1f}x "
        f"over {campaign['jobs']} cold jobs, identical={campaign['identical']}"
    )

    overhead = bench_overhead(args.quick)
    print(
        f"overhead  : instrumented {overhead['instrumented_seconds']:.2f}s "
        f"(null registry {overhead['null_registry_seconds']:.2f}s) -> "
        f"{overhead['overhead_fraction'] * 100:+.1f}%"
    )

    identical = all(sweep["identical"] for sweep in sweeps) and campaign["identical"]
    speedup_ok = all(sweep["speedup"] >= SWEEP_SPEEDUP_MIN for sweep in sweeps)
    overhead_ok = overhead["overhead_fraction"] <= OVERHEAD_MAX
    met = identical and speedup_ok and overhead_ok

    output = Path(args.output)
    write_bench(
        output,
        "sweep",
        {
            "quick": args.quick,
            "sweeps": sweeps,
            "campaign": campaign,
            "overhead": overhead,
            "thresholds": {
                "sweep_speedup_min": SWEEP_SPEEDUP_MIN,
                "overhead_max": OVERHEAD_MAX,
                "identical": identical,
                "overhead_ok": overhead_ok,
                "met": met,
            },
        },
        units={
            "batch_seconds": "s",
            "scalar_seconds": "s",
            "batch_configs_per_s": "configs/s",
            "scalar_configs_per_s": "configs/s",
            "speedup": "ratio",
            "overhead_fraction": "ratio",
        },
    )
    print(f"wrote {output}")
    print(
        f"thresholds (identical results, sweep >= {SWEEP_SPEEDUP_MIN}x, "
        f"overhead <= {OVERHEAD_MAX:.0%}): {'MET' if met else 'NOT MET'}"
    )
    if args.check and not met:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
