"""Table 5: tuned AN5D configuration, measured and model GFLOP/s per stencil.

Since the campaign service landed, this bench runs through it: each
(GPU, dtype) sweep is a campaign against a fresh result store, run twice —
once cold (every tuning job simulated) and once warm (every job answered
from the store).  Both timings land in ``BENCH_campaign.json`` at the repo
root, so the cache's effect on the paper's heaviest artifact is tracked from
PR to PR.

The default run covers the Tesla V100 in single and double precision for all
21 benchmarks; set ``AN5D_BENCH_FULL=1`` to add the P100 columns as well.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from benchmarks.common import read_bench_data, write_bench
from benchmarks.conftest import FULL_SWEEP, format_table, report
from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_CAMPAIGN_JSON = REPO_ROOT / "BENCH_campaign.json"

GPUS = ("V100", "P100") if FULL_SWEEP else ("V100",)
DTYPES = ("float", "double")


def run_campaign(gpu: str, dtype: str, store_path: Path):
    """One Table-5 campaign: all benchmarks on one GPU in one precision."""
    spec = CampaignSpec(gpus=(gpu,), dtypes=(dtype,), kinds=("tune",), top_k=3)
    with ResultStore(store_path) as store:
        cold = CampaignScheduler(spec, store).run()
        warm = CampaignScheduler(spec, store).run()
        results = store.query(kind="tune", gpu=gpu, dtype=dtype, status="ok")
    return cold, warm, results


def result_rows(results):
    rows = []
    for result in results:
        payload = result.payload
        rows.append(
            (
                result.pattern,
                payload["bT"],
                "x".join(str(v) for v in payload["bS"]),
                payload["hS"] if payload["hS"] is not None else "-",
                payload["regs"] if payload["regs"] is not None else "-",
                round(payload["tuned_gflops"]),
                round(payload["model_gflops"]),
                f"{payload['model_accuracy']:.2f}",
            )
        )
    return rows


def record_campaign_timing(label: str, cold, warm) -> None:
    """Merge one sweep's cold/warm timings into BENCH_campaign.json.

    Reads whatever is on disk (old bespoke format or the shared
    ``an5d-bench/v1`` envelope), merges this sweep's row into the
    ``sweeps`` map, and re-emits the enveloped document.
    """
    existing = read_bench_data(BENCH_CAMPAIGN_JSON)
    sweeps = existing.get("sweeps")
    if not isinstance(sweeps, dict):
        sweeps = {}
    sweeps[label] = {
        "jobs": cold.total,
        "cold_s": round(cold.duration_s, 3),
        "warm_s": round(warm.duration_s, 3),
        "warm_cache_hit_rate": warm.cache_hit_rate,
        "speedup": round(cold.duration_s / warm.duration_s, 1)
        if warm.duration_s > 0
        else None,
    }
    write_bench(
        BENCH_CAMPAIGN_JSON,
        "campaign_table5",
        {"sweeps": sweeps},
        units={"cold_s": "s", "warm_s": "s", "warm_cache_hit_rate": "ratio", "speedup": "ratio"},
    )


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_table5_tuned_configurations(benchmark, tmp_path, gpu, dtype):
    cold, warm, results = benchmark.pedantic(
        run_campaign, args=(gpu, dtype, tmp_path / "table5.sqlite"), rounds=1, iterations=1
    )
    rows = result_rows(results)
    table = format_table(
        ["pattern", "bT", "bS", "hS", "regs", "Tuned GFLOP/s", "Model GFLOP/s", "accuracy"], rows
    )
    report(f"table5_{gpu}_{dtype}", f"Table 5: AN5D tuned configurations ({gpu}, {dtype})", table)
    record_campaign_timing(f"{gpu}_{dtype}", cold, warm)

    # The campaign layer must answer the repeated sweep from the store.
    assert cold.ok and cold.executed == cold.total == len(rows)
    assert warm.cached == warm.total and warm.cache_hit_rate >= 0.95

    by_name = {row[0]: row for row in rows}

    # Shape checks mirroring the paper's Table 5 trends.
    # 1. Low-order 2D stencils tune to high temporal blocking degrees.
    assert by_name["star2d1r"][1] >= 6
    assert by_name["j2d5pt"][1] >= 6
    # 2. High-order 3D box stencils do not benefit from temporal blocking.
    assert by_name["box3d3r"][1] <= 2
    assert by_name["box3d4r"][1] <= 2
    # 3. Optimal bT decreases with the stencil order.
    assert by_name["star2d1r"][1] >= by_name["star2d4r"][1]
    assert by_name["star3d1r"][1] >= by_name["star3d4r"][1]
    # 4. The model never under-predicts (accuracy <= 1).
    assert all(float(row[7]) <= 1.0 for row in rows)
    # 5. Model accuracy is in the plausible range the paper reports.
    accuracies = [float(row[7]) for row in rows]
    mean_accuracy = sum(accuracies) / len(accuracies)
    assert 0.3 <= mean_accuracy <= 0.95
