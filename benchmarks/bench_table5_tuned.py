"""Table 5: tuned AN5D configuration, measured and model GFLOP/s per stencil.

The default run covers the Tesla V100 in single and double precision for all
21 benchmarks; set ``AN5D_BENCH_FULL=1`` to add the P100 columns as well.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL_SWEEP, evaluation_grid, format_table, report
from repro.stencils.library import BENCHMARKS, load_pattern
from repro.tuning.autotuner import AutoTuner

GPUS = ("V100", "P100") if FULL_SWEEP else ("V100",)
DTYPES = ("float", "double")


def tune_all(gpu: str, dtype: str):
    tuner = AutoTuner(gpu, top_k=3)
    rows = []
    for name, benchmark in BENCHMARKS.items():
        pattern = load_pattern(name, dtype)
        result = tuner.tune(pattern, evaluation_grid(benchmark.ndim))
        config = result.best_config
        rows.append(
            (
                name,
                config.bT,
                "x".join(str(v) for v in config.bS),
                config.hS if config.hS is not None else "-",
                config.register_limit if config.register_limit is not None else "-",
                round(result.best.measured_gflops),
                round(result.best.predicted_gflops),
                f"{result.model_accuracy:.2f}",
            )
        )
    return rows


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_table5_tuned_configurations(benchmark, gpu, dtype):
    rows = benchmark.pedantic(tune_all, args=(gpu, dtype), rounds=1, iterations=1)
    table = format_table(
        ["pattern", "bT", "bS", "hS", "regs", "Tuned GFLOP/s", "Model GFLOP/s", "accuracy"], rows
    )
    report(f"table5_{gpu}_{dtype}", f"Table 5: AN5D tuned configurations ({gpu}, {dtype})", table)

    by_name = {row[0]: row for row in rows}

    # Shape checks mirroring the paper's Table 5 trends.
    # 1. Low-order 2D stencils tune to high temporal blocking degrees.
    assert by_name["star2d1r"][1] >= 6
    assert by_name["j2d5pt"][1] >= 6
    # 2. High-order 3D box stencils do not benefit from temporal blocking.
    assert by_name["box3d3r"][1] <= 2
    assert by_name["box3d4r"][1] <= 2
    # 3. Optimal bT decreases with the stencil order.
    assert by_name["star2d1r"][1] >= by_name["star2d4r"][1]
    assert by_name["star3d1r"][1] >= by_name["star3d4r"][1]
    # 4. The model never under-predicts (accuracy <= 1).
    assert all(float(row[7]) <= 1.0 for row in rows)
    # 5. Model accuracy is in the plausible range the paper reports.
    accuracies = [float(row[7]) for row in rows]
    mean_accuracy = sum(accuracies) / len(accuracies)
    assert 0.3 <= mean_accuracy <= 0.95
