"""Table 4: GPU specifications used by the model and the simulator."""

from __future__ import annotations

from benchmarks.conftest import format_table, report
from repro.model.gpu_specs import GPUS


def build_rows():
    rows = []
    for key, gpu in GPUS.items():
        rows.append(
            (
                gpu.name,
                f"{gpu.peak_gflops_float:,.0f} | {gpu.peak_gflops_double:,.0f}",
                f"{gpu.peak_membw_gbs:.0f}",
                f"{gpu.measured_membw_float_gbs:.0f} | {gpu.measured_membw_double_gbs:.0f}",
                f"{gpu.measured_smembw_float_gbs:,.0f} | {gpu.measured_smembw_double_gbs:,.0f}",
                gpu.sm_count,
            )
        )
    return rows


def test_table4_gpu_specs(benchmark):
    rows = benchmark(build_rows)
    table = format_table(
        [
            "GPU",
            "peak GFLOP/s (f|d)",
            "peak mem GB/s",
            "measured mem GB/s (f|d)",
            "measured smem GB/s (f|d)",
            "SMs",
        ],
        rows,
    )
    report("table4_gpu_specs", "Table 4: GPU specifications", table)

    by_name = {row[0]: row for row in rows}
    assert by_name["Tesla V100 SXM2"][-1] == 80
    assert by_name["Tesla P100 SXM2"][-1] == 56
    assert "15,700" in by_name["Tesla V100 SXM2"][1]
    assert "535" in by_name["Tesla P100 SXM2"][3]
