"""Table 1: shared-memory footprint and stores per cell, STENCILGEN vs AN5D.

Regenerates the comparison table for representative stencil classes
(diagonal-access-free, associative box, general) and checks the paper's
claims: AN5D's footprint is constant in bT (double buffering) while
STENCILGEN's grows linearly, and both store the same number of cells.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import format_table, report
from repro.core.config import BlockingConfig
from repro.core.shared_memory import an5d_shared_memory_plan, stencilgen_shared_memory_plan
from repro.stencils.library import load_pattern

CASES = [
    ("diagonal-access free", "star2d2r", {}),
    ("associative box", "box2d2r", {}),
    ("otherwise (general)", "gradient2d", {"star_opt": False, "associative_opt": False}),
]


def build_rows(bT: int = 4, nthr: int = 256):
    rows = []
    for label, name, overrides in CASES:
        pattern = load_pattern(name)
        config = BlockingConfig(bT=bT, bS=(nthr,), **overrides)
        ours = an5d_shared_memory_plan(pattern, config)
        theirs = stencilgen_shared_memory_plan(pattern, config)
        rows.append(
            (
                label,
                name,
                theirs.words_per_block,
                ours.words_per_block,
                theirs.stores_per_cell,
                ours.stores_per_cell,
                f"{theirs.words_per_block / ours.words_per_block:.1f}x",
            )
        )
    return rows


def test_table1_shared_memory(benchmark):
    rows = benchmark(build_rows)
    table = format_table(
        [
            "stencil class",
            "example",
            "STENCILGEN words/block",
            "AN5D words/block",
            "SG stores/cell",
            "AN5D stores/cell",
            "footprint ratio",
        ],
        rows,
    )
    report("table1_shared_memory", "Table 1: shared memory footprint (bT=4, nthr=256)", table)

    for _, name, sg_words, an5d_words, sg_stores, an5d_stores, _ in rows:
        pattern = load_pattern(name)
        # Table 1 formulas.
        assert an5d_words in (2 * 256 * pattern.nword, 2 * 256 * (1 + 2 * pattern.radius) * pattern.nword)
        assert sg_words >= 2 * an5d_words  # bT = 4 -> ratio bT/2 = 2
        assert sg_stores == an5d_stores


@pytest.mark.parametrize("bT", [2, 4, 8, 10])
def test_table1_footprint_ratio_scales_with_bt(bT):
    pattern = load_pattern("star2d1r")
    config = BlockingConfig(bT=bT, bS=(256,))
    ours = an5d_shared_memory_plan(pattern, config).words_per_block
    theirs = stencilgen_shared_memory_plan(pattern, config).words_per_block
    assert theirs / ours == pytest.approx(bT / 2)
