"""Cluster scaling: one campaign sharded over 1, 2 and 4 service instances.

For each instance count the bench boots a fresh :class:`LocalCluster`
(N workers + a coordinator, real HTTP between members, one shared store),
submits the same campaign to the coordinator, waits for it to settle, and
records the wall-clock time plus the whole-campaign export.  It then checks
the acceptance contract of the cluster layer:

* every instance count produces an export *byte-identical* to a plain
  single-process ``CampaignScheduler`` run of the same spec;
* re-submitting to a running cluster is answered 100% warm (no new store
  rows, every worker reports ``cache_hit_rate == 1.0``).

Results go to ``BENCH_cluster.json`` at the repository root.

A note on the numbers: LocalCluster members share one Python process (and
its GIL), so the scaling column here under-reports what separate
``an5d serve --cluster`` processes achieve — the CI cluster-smoke job boots
those.  The bench's gate is therefore correctness (identical exports, warm
re-submits), not a speedup threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.common import write_bench  # noqa: E402
from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore  # noqa: E402
from repro.cluster import ClusterClient, FaultPlan, LocalCluster, kill_instance  # noqa: E402
from repro.cluster.faults import ChaosTally  # noqa: E402

INSTANCE_COUNTS = (1, 2, 4)

#: The chaos run's fault schedule — fixed seed, reproducible.
CHAOS_FAULTS = FaultPlan(drop=0.1, duplicate=0.05, seed=20)


def campaign_spec(quick: bool) -> CampaignSpec:
    if quick:
        benchmarks = ("j2d5pt", "j2d9pt", "gradient2d", "star3d1r", "star3d2r", "j3d27pt")
    else:
        # Every Table 3 stencil whose *default* predict configuration is
        # valid on the paper grids: the radius-4 3-D stencils need a tuned
        # blocking (their default bS=(32, 32) overflows shared memory), so
        # they would only contribute failed-by-design rows here.
        from repro.stencils.library import BENCHMARKS

        benchmarks = tuple(
            name for name in BENCHMARKS if name not in ("star3d4r", "box3d4r")
        )
    return CampaignSpec(
        benchmarks=benchmarks,
        gpus=("V100", "P100"),
        dtypes=("float",),
        kinds=("predict", "tune"),
        time_steps=200 if quick else 1000,
        interior_2d=(2048, 2048) if quick else (16384, 16384),
        interior_3d=(128, 128, 128) if quick else (512, 512, 512),
        top_k=2,
    )


def reference_export(spec: CampaignSpec, workdir: Path) -> bytes:
    """The single-process artifact every cluster run must reproduce."""
    with ResultStore(workdir / "reference.sqlite") as store:
        outcome = CampaignScheduler(spec, store).run()
        if not outcome.ok:
            raise RuntimeError(f"reference campaign failed: {outcome.failures}")
        path = store.export_jsonl(workdir / "reference.jsonl")
    return path.read_bytes()


def wait_done(client: ClusterClient, url: str, sid: str, timeout: float = 600.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.submission_status(url, sid)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise RuntimeError(f"submission {sid} did not settle within {timeout}s")


def wait_worker_run(
    client: ClusterClient, url: str, cid: str, runs: int, timeout: float = 120.0
) -> dict:
    """Poll a worker until its ``runs``-th run of one campaign has settled.

    The coordinator settles warm re-submissions from store state alone, so a
    worker's record (and its cache-hit outcome) may lag a moment behind."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = client.request(f"{url}/campaigns/{cid}")
        payload = json.loads(body)
        if payload["state"] in ("done", "failed") and payload["runs"] >= runs:
            return payload
        time.sleep(0.05)
    raise RuntimeError(f"worker {url} run {runs} of {cid} did not settle")


def bench_instances(spec: CampaignSpec, instances: int, workdir: Path) -> dict:
    client = ClusterClient()
    store_path = workdir / f"cluster_{instances}.sqlite"
    with LocalCluster(store=store_path, instances=instances) as cluster:
        start = time.perf_counter()
        submitted = client.submit(cluster.url, spec)
        status = wait_done(client, cluster.url, submitted["id"])
        cold_s = time.perf_counter() - start
        if status["state"] != "done":
            raise RuntimeError(f"cluster campaign failed: {status}")
        export = client.export(cluster.url, submitted["id"])
        results_after_cold = cluster.store.count()

        # Warm re-submit: nothing recomputed, every worker 100% cached.
        start = time.perf_counter()
        client.submit(cluster.url, spec)
        warm_status = wait_done(client, cluster.url, submitted["id"])
        warm_s = time.perf_counter() - start
        warm_ok = (
            warm_status["state"] == "done"
            and cluster.store.count() == results_after_cold
        )
        for worker in cluster.workers:
            payload = wait_worker_run(client, worker.url, submitted["id"], runs=2)
            outcome = payload.get("outcome")
            warm_ok = warm_ok and outcome is not None and outcome["cache_hit_rate"] == 1.0

        per_instance = {
            iid: slice_["progress"]["done"]
            for iid, slice_ in warm_status["instances"].items()
        }
    return {
        "instances": instances,
        "jobs": status["jobs"]["total"],
        "shards": status["shards"],
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_ok": warm_ok,
        "jobs_per_instance": per_instance,
        "export": export,
    }


def bench_chaos(spec: CampaignSpec, workdir: Path, reference: bytes) -> dict:
    """One chaos run: wire workers + injected faults + coordinator kill.

    Coordinator and a lease standby over one store; 2 wire workers with no
    filesystem store access, 10% drops and 5% duplicates injected into
    every worker request.  Mid-campaign the lease holder is crash-stopped;
    the run records how long the survivor took to seize the lease and to
    finish the campaign, and whether the export stayed byte-identical.
    """
    client = ClusterClient()
    tally = ChaosTally()
    with LocalCluster(
        store=workdir / "chaos.sqlite",
        instances=2,
        standbys=1,
        wire_workers=True,
        faults=CHAOS_FAULTS,
        workdir=workdir,
    ) as cluster:
        coordinators = {
            server.app.cluster.instance_id: server
            for server in (cluster.coordinator, cluster.standbys[0])
        }
        submitted = client.submit(cluster.url, spec)
        holder_id = cluster.store.get_lease("coordinator")["holder"]
        survivor_id = next(iid for iid in coordinators if iid != holder_id)
        survivor = coordinators[survivor_id]
        time.sleep(0.3)  # let the campaign get underway before the crash
        kill_instance(coordinators[holder_id])
        tally.kill_at = time.monotonic()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            lease = cluster.store.get_lease("coordinator")
            if lease is not None and lease["holder"] == survivor_id:
                tally.lease_seized_at = time.monotonic()
                break
            time.sleep(0.02)
        if tally.lease_seized_at is None:
            raise RuntimeError("survivor never seized the coordinator lease")
        status = wait_done(client, survivor.url, submitted["id"])
        tally.completed_at = time.monotonic()
        if status["state"] != "done":
            raise RuntimeError(f"chaos campaign failed: {status}")
        for worker in cluster.workers:
            for fault, count in worker.app.store.client.injected_counts().items():
                tally.injected[fault] = tally.injected.get(fault, 0) + count
        export = client.export(survivor.url, submitted["id"])
    return {
        "faults": {
            "drop": CHAOS_FAULTS.drop,
            "duplicate": CHAOS_FAULTS.duplicate,
            "seed": CHAOS_FAULTS.seed,
        },
        "jobs": status["jobs"]["total"],
        "identical_export": export == reference,
        **tally.as_row(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if exports diverge or warm re-submits miss the cache",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="add a wire-worker run with injected faults and a coordinator "
        "kill; records recovery timings and the identical-export gate",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_cluster.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workdir", default=None, help="scratch directory (default: a temp dir)"
    )
    args = parser.parse_args(argv)

    import tempfile

    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp(prefix="an5d-cluster-"))
    workdir.mkdir(parents=True, exist_ok=True)

    spec = campaign_spec(args.quick)
    print(f"== bench_cluster ({'quick' if args.quick else 'full'}) ==")
    print(f"campaign: {spec.describe()} ({spec.size()} jobs)")

    reference = reference_export(spec, workdir)

    runs = []
    baseline_cold = None
    for count in INSTANCE_COUNTS:
        run = bench_instances(spec, count, workdir)
        run["identical_export"] = run.pop("export") == reference
        if baseline_cold is None:
            baseline_cold = run["cold_seconds"]
        run["scaling_vs_1"] = baseline_cold / run["cold_seconds"]
        runs.append(run)
        print(
            f"{count} instance(s): cold {run['cold_seconds']:.2f}s "
            f"(x{run['scaling_vs_1']:.2f} vs 1), warm {run['warm_seconds']:.2f}s, "
            f"identical={run['identical_export']}, warm_ok={run['warm_ok']}"
        )

    chaos = None
    if args.chaos:
        chaos = bench_chaos(spec, workdir, reference)
        print(
            f"chaos: lease seized in {chaos.get('lease_seizure_s', '?')}s, "
            f"done {chaos.get('recovery_to_done_s', '?')}s after the kill, "
            f"injected={chaos['injected']}, identical={chaos['identical_export']}"
        )

    identical = all(run["identical_export"] for run in runs)
    warm = all(run["warm_ok"] for run in runs)
    met = identical and warm and (chaos is None or chaos["identical_export"])

    data = {
        "quick": args.quick,
        "campaign": {
            "describe": spec.describe(),
            "jobs": spec.size(),
            "kinds": list(spec.kinds),
        },
        "runs": runs,
        "thresholds": {
            "identical_exports": identical,
            "warm_resubmits": warm,
            "met": met,
        },
    }
    if chaos is not None:
        data["chaos"] = chaos
    output = Path(args.output)
    write_bench(
        output,
        "cluster",
        data,
        units={
            "cold_seconds": "s",
            "warm_seconds": "s",
            "scaling_vs_1": "ratio",
            "lease_seizure_s": "s",
            "recovery_to_done_s": "s",
        },
    )
    print(f"wrote {output}")
    print(
        f"thresholds (byte-identical exports, 100% warm re-submits): "
        f"{'MET' if met else 'NOT MET'}"
    )
    if args.check and not met:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
