"""Table 2: shared-memory accesses per thread (expected vs practical)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import format_table, report
from repro.model.traffic import shared_memory_access_per_thread
from repro.stencils.generators import box_stencil, star_stencil


def build_rows():
    rows = []
    for ndim in (2, 3):
        for shape, builder in (("star", star_stencil), ("box", box_stencil)):
            for radius in (1, 2, 3, 4):
                access = shared_memory_access_per_thread(builder(ndim, radius))
                rows.append(
                    (f"{ndim}D", shape, radius, access.reads_expected, access.reads_practical, access.writes)
                )
    return rows


def test_table2_shared_memory_access(benchmark):
    rows = benchmark(build_rows)
    table = format_table(
        ["dims", "shape", "rad", "read (expected)", "read (practical)", "write"], rows
    )
    report("table2_smem_access", "Table 2: shared memory access per thread", table)

    lookup = {(dims, shape, rad): (expected, practical, writes) for dims, shape, rad, expected, practical, writes in rows}
    for rad in (1, 2, 3, 4):
        assert lookup[("2D", "star", rad)] == (2 * rad, 2 * rad, 1)
        assert lookup[("3D", "star", rad)] == (4 * rad, 4 * rad, 1)
        column = 2 * rad + 1
        assert lookup[("2D", "box", rad)] == (column**2 - column, column - 1, 1)
        assert lookup[("3D", "box", rad)] == (column**3 - column, column**2 - 1, 1)


def test_table2_practical_reads_never_exceed_expected():
    for dims, shape, rad, expected, practical, _ in build_rows():
        assert practical <= expected, (dims, shape, rad)
