"""Table 3: the benchmark suite and its FLOP/cell figures."""

from __future__ import annotations

from benchmarks.conftest import format_table, report
from repro.ir.flops import flops_per_cell
from repro.stencils.library import BENCHMARKS, load_pattern


def build_rows():
    rows = []
    for name, benchmark in BENCHMARKS.items():
        pattern = load_pattern(name)
        rows.append(
            (
                name,
                f"{benchmark.ndim}D",
                pattern.shape.value,
                benchmark.radius,
                benchmark.paper_flops_per_cell,
                flops_per_cell(pattern.expr),
                "yes" if pattern.associative else "no",
                "yes" if pattern.diagonal_access_free else "no",
            )
        )
    return rows


def test_table3_benchmarks(benchmark):
    rows = benchmark(build_rows)
    table = format_table(
        ["stencil", "dims", "shape", "rad", "FLOP/cell (paper)", "FLOP/cell (counted)", "assoc", "diag-free"],
        rows,
    )
    report("table3_benchmarks", "Table 3: benchmark stencils", table)

    assert len(rows) == 21
    for name, _, _, _, paper_flops, counted, _, _ in rows:
        # gradient2d differs by the rsqrt attribution; everything else matches.
        tolerance = 2 if name == "gradient2d" else 0
        assert abs(paper_flops - counted) <= tolerance, name
