#!/usr/bin/env python3
"""Quickstart: from a C stencil to optimized CUDA in a few lines.

This walks through the full AN5D pipeline on the paper's running example
(the j2d5pt Jacobi stencil of Fig. 4):

1. parse the C loop nest and detect the stencil pattern,
2. apply N.5D blocking with a chosen configuration and generate CUDA,
3. verify the blocked schedule against a naive NumPy reference,
4. predict performance with the analytic model and the timing simulator.

Run with:  python examples/quickstart.py
"""

from repro import api
from repro.core.config import BlockingConfig

C_SOURCE = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (5.1f * A[t%2][i-1][j]
          + 12.1f * A[t%2][i][j-1] + 15.0f * A[t%2][i][j]
          + 12.2f * A[t%2][i][j+1] + 5.2f * A[t%2][i+1][j]) / 118;
"""


def main() -> None:
    # 1. Parse and inspect the stencil.
    detected = api.parse(C_SOURCE, name="j2d5pt")
    pattern = detected.pattern
    print("Detected stencil:")
    print(f"  {pattern.describe()}")
    print(f"  diagonal-access free: {pattern.diagonal_access_free}")
    print(f"  associative:          {pattern.associative}")
    print(f"  uses division:        {pattern.has_division}")

    # 2. Compile with temporal blocking degree 4 and a 256-wide spatial block.
    config = BlockingConfig(bT=4, bS=(256,), hS=512)
    compiled = api.compile_stencil(pattern, config=config)
    kernel_lines = compiled.kernel_source.count("\n")
    host_lines = compiled.host_source.count("\n")
    print(f"\nGenerated CUDA: {kernel_lines} kernel lines, {host_lines} host lines")
    print("Kernel excerpt:")
    for line in compiled.kernel_source.splitlines()[:12]:
        print(f"  {line}")

    # 3. Verify the blocked execution against the reference on a small grid.
    check = api.verify(pattern, bT=4, bS=(32,), grid=(96, 96), time_steps=12)
    print(f"\nFunctional verification vs reference: "
          f"{'OK' if check.matches else 'MISMATCH'} "
          f"(max relative error {check.max_relative_error:.2e})")

    # 4. Ask the model and the simulator what this configuration achieves on
    #    a Tesla V100 for the paper's 16,384^2 x 1,000-step workload.
    prediction = api.predict(pattern, config, gpu="V100", grid=(16384, 16384))
    measurement = api.simulate(pattern, config, gpu="V100", grid=(16384, 16384))
    print("\nPerformance on Tesla V100 (16,384^2, 1,000 time steps):")
    print(f"  analytic model: {prediction.gflops:8.0f} GFLOP/s  (bottleneck: {prediction.bottleneck})")
    print(f"  simulated run:  {measurement.gflops:8.0f} GFLOP/s  (occupancy {measurement.occupancy:.0%})")


if __name__ == "__main__":
    main()
