#!/usr/bin/env python3
"""Model-guided autotuning and framework comparison (one Fig. 6 column).

Reproduces, for a chosen benchmark stencil and GPU, the full evaluation the
paper runs: the two-stage autotuner (model ranking, then "measuring" the top
candidates on the timing simulator), the Sconf configuration that mirrors
STENCILGEN's parameters, and the three baseline frameworks.

Run with:  python examples/autotune_and_compare.py [stencil] [gpu]
e.g.       python examples/autotune_and_compare.py j2d9pt-gol P100
"""

import sys

from repro import api
from repro.model.gpu_specs import get_gpu
from repro.stencils.library import BENCHMARKS, get_benchmark
from repro.tuning.autotuner import AutoTuner
from repro.tuning.pruning import pruning_statistics
from repro.tuning.search_space import default_search_space
from repro.stencils.library import load_pattern


def main() -> None:
    stencil = sys.argv[1] if len(sys.argv) > 1 else "j2d5pt"
    gpu_name = sys.argv[2] if len(sys.argv) > 2 else "V100"
    if stencil not in BENCHMARKS:
        raise SystemExit(f"unknown stencil {stencil!r}; pick one of: {', '.join(BENCHMARKS)}")

    benchmark = get_benchmark(stencil)
    pattern = load_pattern(stencil, "float")
    gpu = get_gpu(gpu_name)
    grid = benchmark.default_grid()
    print(f"Stencil:  {pattern.describe()}")
    print(f"Device:   {gpu.name}")
    print(f"Workload: {'x'.join(map(str, grid.interior))} cells, {grid.time_steps} time steps")

    # -- stage 0: the search space and what pruning removes ------------------------
    space = default_search_space(pattern)
    stats = pruning_statistics(pattern, space.configurations(), gpu)
    print(f"\nSearch space: {stats['total']} configurations "
          f"({stats['invalid']} invalid, {stats['register_pruned']} register-pruned, "
          f"{stats['kept']} evaluated by the model)")

    # -- stage 1 + 2: tune ------------------------------------------------------------
    tuner = AutoTuner(gpu, top_k=5)
    result = tuner.tune(pattern, grid)
    print("\nTop candidates (model-ranked, then simulated):")
    print(f"{'rank':>4}  {'configuration':<28} {'model':>9} {'simulated':>10}")
    for rank, candidate in enumerate(result.top_candidates, start=1):
        marker = "  <- selected" if candidate is result.best else ""
        print(
            f"{rank:>4}  {candidate.config.describe():<28} "
            f"{candidate.predicted_gflops:>9.0f} {candidate.measured_gflops:>10.0f}{marker}"
        )
    print(f"Model accuracy for the selected configuration: {result.model_accuracy:.2f}")

    # -- the Fig. 6 column ---------------------------------------------------------------
    sconf = api.sconf(pattern)
    print(f"\nFramework comparison ({gpu_name}, float, GFLOP/s):")
    rows = [
        ("Loop Tiling", api.baseline("loop", pattern, gpu_name, grid=grid.interior).gflops),
        ("Hybrid Tiling", api.baseline("hybrid", pattern, gpu_name, grid=grid.interior).gflops),
        ("STENCILGEN", api.baseline("stencilgen", pattern, gpu_name, grid=grid.interior).gflops),
        ("AN5D (Sconf)", api.simulate(pattern, sconf, gpu_name, grid=grid.interior).gflops),
        ("AN5D (Tuned)", result.best.measured_gflops),
        ("AN5D (Model)", result.best.predicted_gflops),
    ]
    width = max(len(name) for name, _ in rows)
    scale = max(gflops for _, gflops in rows)
    for name, gflops in rows:
        bar = "#" * int(40 * gflops / scale)
        print(f"  {name:<{width}} {gflops:9.0f}  {bar}")

    # -- the code a real run would compile ---------------------------------------------------
    compiled = api.compile_stencil(pattern, config=result.best_config)
    print(f"\nGenerated kernel '{compiled.cuda.kernel_name}' "
          f"({compiled.kernel_source.count(chr(10))} lines); compile with:")
    print(f"  {compiled.cuda.nvcc_command(register_limit=result.best_config.register_limit)}")


if __name__ == "__main__":
    main()
