#!/usr/bin/env python3
"""3D seismic/acoustic kernel: temporal-blocking trade-offs in 3D.

3D star stencils are the core of acoustic wave propagation and seismic
imaging codes (the motivation the paper's introduction cites for stencil
computation in HPC).  This example uses a radius-2 3D star stencil to show:

* how the N.5D execution geometry changes with the temporal blocking degree
  (halo growth, redundant work, thread-block counts),
* how simulated performance on a Tesla V100 scales with bT (the Fig. 8
  story), and why 3D stencils peak at a lower degree than 2D ones,
* how AN5D compares against the baseline frameworks on this workload.

Run with:  python examples/acoustic_wave_3d.py
"""

from repro import api
from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.ir.stencil import GridSpec
from repro.stencils.library import load_pattern


def main() -> None:
    pattern = load_pattern("star3d2r", "float")
    print(f"Workload: {pattern.describe()}")
    grid = GridSpec((512, 512, 512), 1000)

    # -- execution geometry vs temporal blocking degree ------------------------
    print("\nExecution geometry (bS = 32x32, hS = 128):")
    print(f"{'bT':>3} {'halo':>5} {'compute':>9} {'blocks':>7} {'redundant':>10}")
    for bT in (1, 2, 3, 4, 6):
        config = BlockingConfig(bT=bT, bS=(32, 32), hS=128)
        if not config.is_valid(pattern):
            print(f"{bT:>3}  -- invalid: halo eats the whole block --")
            continue
        model = ExecutionModel(pattern, grid, config)
        print(
            f"{bT:>3} {model.halo_per_side:>5} {str(model.compute_sizes):>9} "
            f"{model.total_thread_blocks:>7} {model.redundant_compute_fraction():>9.1%}"
        )

    # -- correctness spot check --------------------------------------------------
    check = api.verify(pattern, bT=2, bS=(24, 24), grid=(20, 48, 48), time_steps=6)
    print(f"\nBlocked execution matches reference: {check.matches} "
          f"(max rel. error {check.max_relative_error:.1e})")

    # -- bT scaling on V100 (the Fig. 8 story) -----------------------------------
    print("\nSimulated performance on Tesla V100 vs temporal blocking degree:")
    best = (0, 0.0)
    for bT in range(1, 7):
        config = BlockingConfig(bT=bT, bS=(32, 32), hS=128, register_limit=64)
        if not config.is_valid(pattern):
            break
        gflops = api.simulate(pattern, config, gpu="V100", grid=grid.interior).gflops
        marker = ""
        if gflops > best[1]:
            best = (bT, gflops)
            marker = "  <- best so far"
        print(f"  bT={bT}: {gflops:7.0f} GFLOP/s{marker}")
    print(f"Best degree: bT={best[0]} — 3D stencils peak earlier than 2D because the "
          "halo is two-dimensional and register pressure grows faster.")

    # -- comparison with the baselines --------------------------------------------
    print("\nFramework comparison on this workload (V100, float):")
    rows = [
        ("Loop tiling (PPCG)", api.baseline("loop", pattern, "V100", grid=grid.interior).gflops),
        ("Hybrid tiling", api.baseline("hybrid", pattern, "V100", grid=grid.interior).gflops),
        ("STENCILGEN", api.baseline("stencilgen", pattern, "V100", grid=grid.interior).gflops),
        ("AN5D (best bT above)", best[1]),
    ]
    for name, gflops in rows:
        print(f"  {name:<22} {gflops:8.0f} GFLOP/s")


if __name__ == "__main__":
    main()
