#!/usr/bin/env python3
"""2D heat diffusion: a physical workload on top of the AN5D pipeline.

A user solving the 2D heat equation with an explicit 5-point scheme writes
the usual double-buffered C loop nest.  This example:

* builds the stencil from that C code,
* runs the temporally-blocked executor and confirms it matches a plain
  time-stepping loop while tracking the physical quantity of interest
  (total heat is conserved up to boundary losses, the hot spot spreads),
* autotunes the kernel for a Tesla V100 and reports the configuration a
  production run would use, and
* writes the generated CUDA to ``heat2d_generated.cu``.

Run with:  python examples/heat_diffusion_2d.py
"""

from pathlib import Path

import numpy as np

from repro import api
from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.sim.executor import BlockedStencilExecutor
from repro.stencils.reference import ReferenceExecutor

ALPHA = 0.2  # diffusion coefficient * dt / dx^2

HEAT_SOURCE = f"""
for (t = 0; t < T; t++)
  for (i = 1; i <= N; i++)
    for (j = 1; j <= M; j++)
      A[(t+1)%2][i][j] = {ALPHA}f * A[t%2][i-1][j] + {ALPHA}f * A[t%2][i+1][j]
          + {ALPHA}f * A[t%2][i][j-1] + {ALPHA}f * A[t%2][i][j+1]
          + {1.0 - 4 * ALPHA}f * A[t%2][i][j];
"""


def hot_plate(grid: GridSpec, radius: int) -> np.ndarray:
    """A cold plate with a hot square in the middle and cold boundaries."""
    shape = grid.padded(radius)
    plate = np.zeros(shape, dtype=np.float32)
    cy, cx = shape[0] // 2, shape[1] // 2
    plate[cy - 8 : cy + 8, cx - 8 : cx + 8] = 100.0
    return plate


def main() -> None:
    detected = api.parse(HEAT_SOURCE, name="heat2d")
    pattern = detected.pattern
    print(f"Stencil: {pattern.describe()}")

    # -- physics sanity check with the blocked executor -----------------------
    grid = GridSpec((128, 128), 60)
    config = BlockingConfig(bT=6, bS=(64,))
    initial = hot_plate(grid, pattern.radius)

    blocked = BlockedStencilExecutor(pattern, grid, config).run(initial.copy())
    reference = ReferenceExecutor(pattern).run(initial.copy(), grid.time_steps)

    max_error = float(np.max(np.abs(blocked - reference)))
    centre_before = float(initial[initial.shape[0] // 2, initial.shape[1] // 2])
    centre_after = float(blocked[blocked.shape[0] // 2, blocked.shape[1] // 2])
    heated_cells = int((blocked > 1.0).sum())

    print(f"\nAfter {grid.time_steps} time steps (temporal blocking degree {config.bT}):")
    print(f"  blocked vs reference max abs error: {max_error:.3e}")
    print(f"  hot-spot temperature: {centre_before:.1f} -> {centre_after:.1f}")
    print(f"  cells above 1.0 degree: {heated_cells} (diffusion spread the heat)")
    assert max_error < 1e-3

    # -- production tuning ------------------------------------------------------
    result = api.tune(pattern, gpu="V100", grid=(8192, 8192), time_steps=500)
    best = result.best_config
    print("\nAutotuned configuration for Tesla V100 (8,192^2, 500 steps):")
    print(f"  bT={best.bT}, bS={best.bS}, hS={best.hS}, register limit={best.register_limit}")
    print(f"  simulated: {result.best.measured_gflops:,.0f} GFLOP/s, "
          f"model: {result.best.predicted_gflops:,.0f} GFLOP/s")

    # -- emit the CUDA a real deployment would compile with NVCC -----------------
    compiled = api.compile_stencil(pattern, config=best)
    output = Path(__file__).parent / "heat2d_generated.cu"
    output.write_text(compiled.cuda.full_source)
    print(f"\nWrote generated CUDA to {output}")
    print(f"Suggested compile command:\n  {compiled.cuda.nvcc_command(register_limit=best.register_limit)}")


if __name__ == "__main__":
    main()
