"""Tests for C re-emission, result reporting and exhaustive tuning."""

import json

import pytest

from repro.codegen.c_gen import generate_c, render_c_expression, round_trips
from repro.frontend.stencil_detect import parse_stencil
from repro.ir.stencil import GridSpec
from repro.reporting import ResultTable, bar_chart, series_table
from repro.stencils.generators import box_stencil, star_stencil
from repro.stencils.library import BENCHMARKS, load_pattern
from repro.tuning.exhaustive import compare_guided_vs_exhaustive, exhaustive_search
from repro.tuning.search_space import SearchSpace


# -- C re-emission -------------------------------------------------------------


def test_generate_c_produces_parseable_source(j2d5pt):
    source = generate_c(j2d5pt)
    assert "for (t = 0; t < I_T; t++)" in source
    reparsed = parse_stencil(source, name="again").pattern
    assert reparsed.offsets == j2d5pt.offsets


def test_generate_c_loop_bounds_follow_paper_notation(star3d1r):
    source = generate_c(star3d1r)
    assert "I_S3" in source and "I_S1" in source


def test_generate_c_custom_size_names(j2d5pt):
    source = generate_c(j2d5pt, size_names=("NY", "NX"))
    assert "NY" in source and "NX" in source
    with pytest.raises(ValueError):
        generate_c(j2d5pt, size_names=("N",))


@pytest.mark.parametrize(
    "name", ["j2d5pt", "j2d9pt", "j2d9pt-gol", "gradient2d", "j3d27pt", "star2d3r", "box3d2r"]
)
def test_round_trip_benchmarks(name):
    assert round_trips(load_pattern(name))


def test_round_trip_synthetic_double():
    assert round_trips(star_stencil(2, 4, dtype="double"))
    assert round_trips(box_stencil(3, 1, dtype="double"))


def test_render_c_expression_float_suffixes(j2d5pt):
    text = render_c_expression(j2d5pt.expr, j2d5pt, ("i", "j"))
    assert "5.1f" in text and "A[t%2][i-1][j]" in text


def test_render_c_expression_double_has_no_suffix():
    pattern = load_pattern("j2d5pt", "double")
    text = render_c_expression(pattern.expr, pattern, ("i", "j"))
    assert "5.1f" not in text


def test_round_trip_preserves_values(j2d5pt):
    """Re-parsed coefficients evaluate to the same update (not just offsets)."""
    from repro.ir.expr import evaluate

    reparsed = parse_stencil(generate_c(j2d5pt), name="rt", dtype="float").pattern

    def reader(read):
        return 1.0 + 0.1 * read.offset[0] + 0.01 * read.offset[1]

    assert evaluate(reparsed.expr, reader) == pytest.approx(evaluate(j2d5pt.expr, reader), rel=1e-6)


# -- reporting ----------------------------------------------------------------------


def make_table():
    table = ResultTable("demo", ["stencil", "gflops"])
    table.add_row("j2d5pt", 5288)
    table.add_dict({"stencil": "star2d1r", "gflops": 4800})
    return table


def test_result_table_text_and_markdown():
    table = make_table()
    text = table.to_text()
    assert "j2d5pt" in text and "demo" in text
    markdown = table.to_markdown()
    assert markdown.count("|") >= 8
    assert markdown.startswith("### demo")


def test_result_table_csv_and_json_round_trip():
    table = make_table()
    assert table.to_csv().splitlines()[0] == "stencil,gflops"
    payload = json.loads(table.to_json())
    assert payload["rows"][0]["stencil"] == "j2d5pt"
    assert table.to_records()[1]["gflops"] == 4800


def test_result_table_row_arity_checked():
    with pytest.raises(ValueError):
        ResultTable("x", ["a", "b"]).add_row(1)


def test_result_table_save_formats(tmp_path):
    table = make_table()
    for suffix in (".csv", ".json", ".md", ".txt"):
        path = table.save(tmp_path / f"out{suffix}")
        assert path.exists() and path.stat().st_size > 0
    with pytest.raises(ValueError):
        table.save(tmp_path / "out.xlsx")


def test_bar_chart_scaling():
    chart = bar_chart(["a", "b"], [10.0, 5.0], width=20)
    lines = chart.splitlines()
    assert lines[0].count("#") == 20
    assert lines[1].count("#") == 10
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_series_table_merges_x_axis():
    table = series_table("s", "bT", {"tuned": {1: 10.0, 2: 20.0}, "model": {2: 25.0, 3: 30.0}})
    assert table.headers == ["bT", "tuned", "model"]
    assert len(table.rows) == 3


# -- exhaustive tuning ------------------------------------------------------------------


SMALL_SPACE = SearchSpace(
    time_blocks=(1, 2, 4, 8),
    spatial_blocks=((128,), (256,)),
    stream_blocks=(512,),
    register_limits=(None, 64),
)


def test_exhaustive_search_finds_positive_optimum(j2d5pt):
    grid = GridSpec((8192, 8192), 120)
    result = exhaustive_search(j2d5pt, grid, "V100", SMALL_SPACE, register_limits=(None, 64))
    assert result.best_gflops > 0
    assert result.evaluated == len(list(SMALL_SPACE.configurations())) * 2
    assert result.as_row()["bT"] in (1, 2, 4, 8)


def test_guided_tuning_close_to_exhaustive(j2d5pt):
    grid = GridSpec((8192, 8192), 120)
    comparison = compare_guided_vs_exhaustive(j2d5pt, grid, "V100", top_k=3, space=SMALL_SPACE)
    assert 0.85 <= comparison.efficiency <= 1.0
    assert comparison.evaluations_saved >= 0


def test_exhaustive_search_rejects_empty_space(v100):
    pattern = load_pattern("star2d4r", "double")
    space = SearchSpace(time_blocks=(16,), spatial_blocks=((128,),), stream_blocks=(256,))
    with pytest.raises(ValueError):
        exhaustive_search(pattern, GridSpec((4096, 4096), 100), v100, space)
