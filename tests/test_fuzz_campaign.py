"""Differential fuzzing campaigns: reproducibility, wire format, and store.

The campaign contract: the same seed reproduces the same stencils, the same
jobs, the same content addresses, and — because the payloads carry no
timestamps or environment-dependent fields — byte-identical store exports
across independent cold runs.  Re-running a seed against the same store is
answered entirely warm.
"""

import json

import pytest

from repro import api
from repro.campaign import CampaignSpec, ResultStore
from repro.campaign.jobs import run_job
from repro.stencils.generators import fuzz_name

SEED, COUNT = 11, 4


def _cold_run(path):
    outcome, records = api.fuzz(seed=SEED, count=COUNT, store=path)
    with ResultStore(path) as store:
        exported = store.export_records(kind="fuzz")
    return outcome, records, exported


def test_fuzz_exports_are_byte_identical_across_cold_runs(tmp_path):
    outcome_a, records_a, exported_a = _cold_run(tmp_path / "a.sqlite")
    outcome_b, records_b, exported_b = _cold_run(tmp_path / "b.sqlite")
    assert outcome_a.executed == COUNT == outcome_b.executed
    assert len(exported_a) == COUNT
    assert json.dumps(exported_a, sort_keys=True) == json.dumps(exported_b, sort_keys=True)
    assert json.dumps(records_a, sort_keys=True) == json.dumps(records_b, sort_keys=True)


def test_fuzz_rerun_is_fully_warm(tmp_path):
    path = tmp_path / "fuzz.sqlite"
    cold, _ = api.fuzz(seed=SEED, count=COUNT, store=path)
    warm, records = api.fuzz(seed=SEED, count=COUNT, store=path)
    assert cold.executed == COUNT and cold.cached == 0
    assert warm.cached == warm.total == COUNT and warm.executed == 0
    assert warm.cache_hit_rate == 1.0
    assert len(records) == COUNT
    assert all(record["payload"]["passed"] for record in records)
    assert all(record["payload"]["divergences"] == 0 for record in records)


def test_fuzz_spec_wire_round_trip():
    spec = CampaignSpec(kinds=("fuzz",), fuzz_seed=7, fuzz_count=5)
    decoded = CampaignSpec.from_json(spec.to_json())
    assert decoded == spec
    assert decoded.key() == spec.key()
    assert decoded.expand() == spec.expand()


def test_plain_spec_wire_format_is_unchanged():
    # Pre-fuzz campaigns must keep their exact canonical encoding (and so
    # their content addresses): no fuzz fields leak into their JSON.
    spec = CampaignSpec(benchmarks=("j2d5pt",), kinds=("tune",))
    payload = spec.to_json()
    assert "fuzz_seed" not in payload and "fuzz_count" not in payload
    assert CampaignSpec.from_json(payload).key() == spec.key()


def test_fuzz_kind_and_count_must_agree():
    with pytest.raises(ValueError):
        CampaignSpec(kinds=("fuzz",))
    with pytest.raises(ValueError):
        CampaignSpec(kinds=("tune",), fuzz_count=3)
    with pytest.raises(ValueError):
        CampaignSpec(kinds=("fuzz",), fuzz_seed=0, fuzz_count=-1)


def test_fuzz_expansion_is_deterministic():
    spec = CampaignSpec(kinds=("fuzz",), fuzz_seed=3, fuzz_count=6)
    jobs = spec.expand()
    assert [job.pattern for job in jobs] == [fuzz_name(3, index) for index in range(6)]
    assert all(job.kind == "fuzz" for job in jobs)
    assert jobs == CampaignSpec(kinds=("fuzz",), fuzz_seed=3, fuzz_count=6).expand()


def test_run_fuzz_payload_passes_all_checks():
    (job,) = CampaignSpec(kinds=("fuzz",), fuzz_seed=5, fuzz_count=1).expand()
    payload = run_job(job)
    assert payload["passed"] is True
    assert payload["divergences"] == 0
    names = [check["check"] for check in payload["checks"]]
    assert "frontend_roundtrip" in names
    assert "compiled_vs_interpreter" in names
    assert "blocked_vs_reference" in names
    assert "batch_vs_scalar_model" in names
    assert all(check["passed"] for check in payload["checks"])
