"""Tests for stencil-pattern detection (the PPCG-backend analogue)."""

import pytest

from repro.frontend.stencil_detect import StencilDetectionError, parse_stencil
from repro.stencils.generators import box_stencil_source, star_stencil_source
from repro.stencils.library import get_benchmark

J2D5PT = get_benchmark("j2d5pt").source


def test_detect_j2d5pt_offsets():
    detected = parse_stencil(J2D5PT, name="j2d5pt")
    assert detected.pattern.offsets == [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]
    assert detected.pattern.radius == 1
    assert detected.ndim == 2


def test_detect_loop_metadata():
    detected = parse_stencil(J2D5PT)
    assert detected.time_loop.var == "t"
    assert detected.time_loop.upper == "I_T"
    assert [loop.var for loop in detected.spatial_loops] == ["i", "j"]
    assert detected.spatial_loops[0].inclusive


def test_dtype_inferred_from_float_suffix():
    detected = parse_stencil(J2D5PT)
    assert detected.pattern.dtype == "float"


def test_dtype_override():
    detected = parse_stencil(J2D5PT, dtype="double")
    assert detected.pattern.dtype == "double"


def test_dtype_double_without_suffix():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j] = 0.25 * A[t%2][i-1][j] + 0.75 * A[t%2][i+1][j];
    """
    assert parse_stencil(source).pattern.dtype == "double"


def test_detect_3d_stencil():
    detected = parse_stencil(get_benchmark("j3d27pt").source, name="j3d27pt")
    assert detected.pattern.ndim == 3
    assert len(detected.pattern.offsets) == 27


@pytest.mark.parametrize("ndim,radius", [(2, 1), (2, 3), (3, 1), (3, 2)])
def test_synthetic_star_sources_round_trip(ndim, radius):
    pattern = parse_stencil(star_stencil_source(ndim, radius)).pattern
    assert pattern.ndim == ndim
    assert pattern.radius == radius
    assert pattern.is_star


@pytest.mark.parametrize("ndim,radius", [(2, 1), (2, 2), (3, 1)])
def test_synthetic_box_sources_round_trip(ndim, radius):
    pattern = parse_stencil(box_stencil_source(ndim, radius)).pattern
    assert pattern.is_box
    assert len(pattern.offsets) == (2 * radius + 1) ** ndim


def test_source_is_attached_to_pattern():
    detected = parse_stencil(J2D5PT, name="j2d5pt")
    assert detected.pattern.source is not None
    assert "A[(t+1)%2]" in detected.pattern.source.replace(" ", "")


def test_reject_two_top_level_nests():
    source = J2D5PT + "\n" + J2D5PT
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_missing_spatial_loop():
    source = """
    for (t = 0; t < T; t++)
      A[(t+1)%2][1] = A[t%2][1];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_store_to_current_time_step():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[t%2][i][j] = A[t%2][i][j-1];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_read_of_next_time_step():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j] = A[(t+1)%2][i][j-1];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_store_with_spatial_offset():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j+1] = A[t%2][i][j];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_multiple_arrays():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j] = B[t%2][i][j];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_non_affine_subscript():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j] = A[t%2][i][2*j];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_free_scalar_coefficient():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j] = alpha * A[t%2][i][j];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_non_double_buffered_time_index():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[t+1][i][j] = A[t][i][j];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_duplicate_loop_variables():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (i = 1; i <= M; i++)
          A[(t+1)%2][i][i] = A[t%2][i][i];
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)


def test_reject_multi_statement_body():
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++) {
          A[(t+1)%2][i][j] = A[t%2][i][j];
          A[(t+1)%2][i][j] = A[t%2][i][j-1];
        }
    """
    with pytest.raises(StencilDetectionError):
        parse_stencil(source)
