"""Property-based tests (Hypothesis) for core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.associative import decompose_partial_sums
from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel, ThreadCategory
from repro.core.register_alloc import FixedRegisterAllocation
from repro.core.shared_memory import an5d_shared_memory_plan, stencilgen_shared_memory_plan
from repro.ir.expr import evaluate
from repro.ir.flops import alu_efficiency, count_flops
from repro.ir.stencil import GridSpec
from repro.polyhedral.dependence import required_halo, tiling_is_legal
from repro.polyhedral.linexpr import LinExpr
from repro.polyhedral.sets import Constraint, IntegerSet
from repro.sim.executor import verify_blocking
from repro.stencils.generators import box_stencil, star_stencil

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

stencil_strategy = st.builds(
    lambda kind, ndim, radius: (star_stencil if kind else box_stencil)(ndim, radius),
    st.booleans(),
    st.integers(2, 3),
    st.integers(1, 3),
)


# -- IR invariants ---------------------------------------------------------------


@_SETTINGS
@given(stencil_strategy)
def test_radius_matches_max_offset(pattern):
    assert pattern.radius == max(abs(c) for o in pattern.offsets for c in o)


@_SETTINGS
@given(stencil_strategy)
def test_offset_set_is_symmetric(pattern):
    offsets = set(pattern.offsets)
    assert all(tuple(-c for c in o) in offsets for o in offsets)


@_SETTINGS
@given(stencil_strategy)
def test_alu_efficiency_in_half_one_range(pattern):
    assert 0.5 <= alu_efficiency(count_flops(pattern.expr)) <= 1.0


@_SETTINGS
@given(stencil_strategy)
def test_partial_sums_equal_direct_evaluation(pattern):
    steps = decompose_partial_sums(pattern)

    def reader(read):
        return 0.5 + 0.25 * sum(read.offset) + 0.125 * read.offset[-1]

    direct = evaluate(pattern.expr, reader)
    recomposed = sum(evaluate(step.expr, reader) for step in steps)
    assert math.isclose(direct, recomposed, rel_tol=1e-9)


# -- blocking geometry invariants ----------------------------------------------------


@_SETTINGS
@given(
    pattern=stencil_strategy,
    bT=st.integers(1, 6),
    block=st.sampled_from([32, 48, 64]),
    extent=st.integers(48, 200),
)
def test_valid_threads_always_cover_grid(pattern, bT, block, extent):
    blocked_dims = pattern.ndim - 1
    config = BlockingConfig(bT=bT, bS=(block,) * blocked_dims)
    assume(config.is_valid(pattern))
    assume(config.nthr <= 1024)
    grid = GridSpec((extent,) * pattern.ndim, 8)
    model = ExecutionModel(pattern, grid, config)
    counts = model.thread_category_counts()
    expected = 1
    for dim_extent in grid.interior[1:]:
        expected *= dim_extent
    assert counts[ThreadCategory.VALID] == expected
    assert sum(counts.values()) == model.ntb * model.nthr


@_SETTINGS
@given(pattern=stencil_strategy, bT=st.integers(1, 12))
def test_halo_formula_matches_dependences(pattern, bT):
    assert required_halo(pattern, bT) == (bT * pattern.radius,) * pattern.ndim


@_SETTINGS
@given(pattern=stencil_strategy, bT=st.integers(1, 8), block=st.integers(16, 96))
def test_tiling_legality_consistent_with_config_validity(pattern, bT, block):
    blocked_dims = pattern.ndim - 1
    config_valid = True
    try:
        config = BlockingConfig(bT=bT, bS=(block,) * blocked_dims)
        config.validate(pattern)
    except Exception:
        config_valid = False
    legality = tiling_is_legal(pattern, bT, (block,) * blocked_dims, range(1, pattern.ndim))
    if config_valid:
        assert legality
    # thread-count limits can invalidate a config that is still legal tiling,
    # so no assertion in the other direction.


@_SETTINGS
@given(bT=st.integers(1, 12), radius=st.integers(1, 4))
def test_register_rotation_is_permutation(bT, radius):
    alloc = FixedRegisterAllocation(bT, radius)
    period = alloc.slots_per_step
    for i in range(2 * period):
        assert sorted(alloc.rotation(i)) == list(range(period))
    assert alloc.rotation(0) == alloc.rotation(period)


@_SETTINGS
@given(pattern=stencil_strategy, bT=st.integers(2, 10))
def test_an5d_smem_footprint_never_exceeds_stencilgen(pattern, bT):
    config = BlockingConfig(bT=bT, bS=(32,) * (pattern.ndim - 1))
    ours = an5d_shared_memory_plan(pattern, config)
    theirs = stencilgen_shared_memory_plan(pattern, config)
    assert ours.words_per_block <= theirs.words_per_block


# -- polyhedral invariants --------------------------------------------------------------


@_SETTINGS
@given(
    bounds=st.tuples(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
)
def test_projection_preserves_membership(bounds):
    x_low, x_high, y_low, y_high = bounds
    assume(x_low <= x_high and y_low <= y_high)
    box = IntegerSet.box({"x": (x_low, x_high), "y": (y_low, y_high)})
    diag = box.with_constraint(Constraint.ge(LinExpr.var("x") - LinExpr.var("y")))
    projected = diag.project_out("y")
    for point in diag.points():
        assert projected.contains({"x": point[0]})


@_SETTINGS
@given(
    bounds=st.tuples(st.integers(-4, 4), st.integers(-4, 4), st.integers(-4, 4), st.integers(-4, 4))
)
def test_intersection_count_never_exceeds_parts(bounds):
    a_low, a_high, b_low, b_high = bounds
    assume(a_low <= a_high and b_low <= b_high)
    a = IntegerSet.box({"x": (a_low, a_high)})
    b = IntegerSet.box({"x": (b_low, b_high)})
    both = a.intersect(b)
    assert both.count() <= min(a.count(), b.count())


# -- functional correctness (the headline invariant) -------------------------------------


@_SETTINGS
@given(
    bT=st.integers(1, 6),
    steps=st.integers(1, 10),
    extent=st.integers(40, 72),
    seed=st.integers(0, 100),
)
def test_blocked_execution_matches_reference_2d(bT, steps, extent, seed):
    pattern = star_stencil(2, 1)
    config = BlockingConfig(bT=bT, bS=(32,))
    grid = GridSpec((extent, extent), steps)
    result = verify_blocking(pattern, grid, config, seed=seed)
    assert result.matches


@_SETTINGS
@given(bT=st.integers(1, 3), steps=st.integers(1, 5), seed=st.integers(0, 50))
def test_blocked_execution_matches_reference_3d(bT, steps, seed):
    pattern = star_stencil(3, 1)
    config = BlockingConfig(bT=bT, bS=(16, 16))
    grid = GridSpec((14, 24, 24), steps)
    result = verify_blocking(pattern, grid, config, seed=seed)
    assert result.matches


@_SETTINGS
@given(radius=st.integers(1, 3), hS=st.integers(10, 40), steps=st.integers(1, 8))
def test_blocked_execution_with_stream_division(radius, hS, steps):
    pattern = box_stencil(2, radius)
    config = BlockingConfig(bT=2, bS=(16 + 8 * radius,), hS=hS)
    grid = GridSpec((60, 60), steps)
    assume(config.is_valid(pattern))
    result = verify_blocking(pattern, grid, config)
    assert result.matches
