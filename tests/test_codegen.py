"""Tests for CUDA code generation (kernel, host, macros, emitter)."""

import re

import pytest

from repro.codegen.cuda_ast import Assign, Block, Declare, For, FuncDef, If, Raw, Return, Sync
from repro.codegen.emitter import CudaEmitter
from repro.codegen.kernel_gen import generate_kernel
from repro.codegen.host_gen import generate_host
from repro.codegen.macros import generate_macro_definitions, render_expression
from repro.codegen.package import generate_cuda
from repro.core.config import BlockingConfig
from repro.core.transform import an5d_transform
from repro.stencils.library import load_pattern


def make_plan(pattern, **kwargs):
    defaults = dict(bT=4, bS=(64,) if pattern.ndim == 2 else (16, 16), hS=None)
    defaults.update(kwargs)
    return an5d_transform(pattern, BlockingConfig(**defaults))


# -- emitter ------------------------------------------------------------------


def test_emitter_indents_nested_blocks():
    emitter = CudaEmitter()
    tree = FuncDef(
        "void",
        "f",
        ("int x",),
        Block([If("x > 0", Block([Assign("x", "x - 1"), Sync()]), Block([Return()]))]),
    )
    text = emitter.emit(tree)
    assert "void f(int x) {" in text
    assert "  if (x > 0) {" in text
    assert "    x = x - 1;" in text
    assert "    __syncthreads();" in text
    assert "  } else {" in text


def test_emitter_for_loop_and_declarations():
    emitter = CudaEmitter()
    loop = For("int i = 0", "i < 4", "i++", Block([Declare("float", "x", "0.0f")]))
    text = emitter.emit(loop)
    assert text.startswith("for (int i = 0; i < 4; i++) {")
    assert "float x = 0.0f;" in text


def test_emitter_rejects_unknown_node():
    with pytest.raises(TypeError):
        CudaEmitter().emit(object())  # type: ignore[arg-type]


def test_declare_with_qualifiers():
    assert Declare("float", "x", qualifiers="__shared__").render() == "__shared__ float x;"


# -- expression rendering --------------------------------------------------------


def test_render_expression_uses_registers_for_own_column(j2d5pt):
    text = render_expression(j2d5pt, j2d5pt.expr, ["r0", "r1", "r2"], "SM", multi_plane=False)
    assert "(r0)" in text and "(r1)" in text and "(r2)" in text


def test_render_expression_uses_smem_for_neighbours(j2d5pt):
    text = render_expression(j2d5pt, j2d5pt.expr, ["r0", "r1", "r2"], "SM", multi_plane=False)
    assert "__an5d_sm_load(&SM[__an5d_tx + -1])" in text
    assert "__an5d_sm_load(&SM[__an5d_tx + 1])" in text


def test_render_expression_multi_plane_indexing(box2d1r):
    text = render_expression(box2d1r, box2d1r.expr, ["r0", "r1", "r2"], "SM", multi_plane=True)
    # Neighbouring sub-planes are addressed by plane index rad + offset.
    assert "SM[0]" in text and "SM[2]" in text


def test_render_expression_literal_suffix_follows_dtype():
    single = load_pattern("j2d5pt", "float")
    double = load_pattern("j2d5pt", "double")
    text_single = render_expression(single, single.expr, ["a", "b", "c"], "SM", False)
    text_double = render_expression(double, double.expr, ["a", "b", "c"], "SM", False)
    assert "5.1f" in text_single
    assert "5.1f" not in text_double and "5.1" in text_double


# -- macros ------------------------------------------------------------------------


def test_macro_definitions_cover_all_time_steps(j2d5pt):
    plan = make_plan(j2d5pt, bT=4)
    text = generate_macro_definitions(plan)
    for name in ("#define LOAD(", "#define CALC1(", "#define CALC2(", "#define CALC3(", "#define STORE("):
        assert name in text
    assert "#define CALC4(" not in text


def test_macro_definitions_wrap_smem_loads(j2d5pt):
    text = generate_macro_definitions(make_plan(j2d5pt))
    assert "__an5d_sm_load" in text
    assert "__device__ __forceinline__" in text


def test_macros_alternate_double_buffers(j2d5pt):
    text = generate_macro_definitions(make_plan(j2d5pt, bT=3))
    # CALC1 writes buffer 1, CALC2 writes buffer 0.
    calc1 = text.split("#define CALC1")[1].split("#define")[0]
    calc2 = text.split("#define CALC2")[1].split("#define")[0]
    assert "__an5d_sm1[__an5d_tx] = __an5d_res" in calc1
    assert "__an5d_sm0[__an5d_tx] = __an5d_res" in calc2


def test_store_macro_guards_compute_region(j2d5pt):
    text = generate_macro_definitions(make_plan(j2d5pt))
    assert "__an5d_in_compute_region" in text


# -- kernel ------------------------------------------------------------------------


def test_kernel_contains_global_qualifier_and_name(j2d5pt):
    source = generate_kernel(make_plan(j2d5pt))
    assert "__global__" in source
    assert "an5d_kernel_j2d5pt" in source


def test_kernel_declares_double_buffered_smem(j2d5pt):
    source = generate_kernel(make_plan(j2d5pt))
    assert "__shared__ float __an5d_sm0" in source
    assert "__shared__ float __an5d_sm1" in source


def test_kernel_declares_all_subplane_registers(j2d5pt):
    source = generate_kernel(make_plan(j2d5pt, bT=4))
    for step in range(4):
        for slot in range(3):
            assert f"reg_{step}_{slot}" in source


def test_kernel_has_three_phases_and_sync(j2d5pt):
    source = generate_kernel(make_plan(j2d5pt))
    assert "head phase" in source and "inner phase" in source and "tail phase" in source
    assert source.count("__syncthreads();") >= 2


def test_kernel_inner_loop_steps_by_rotation_period(j2d9pt):
    source = generate_kernel(make_plan(j2d9pt, bT=3))
    assert re.search(r"__an5d_h \+= 5", source)


def test_kernel_macro_argument_rotation_visible(j2d5pt):
    source = generate_kernel(make_plan(j2d5pt, bT=4))
    # Different rotations of the final register group appear in STORE calls.
    assert "reg_3_0, reg_3_1, reg_3_2" in source
    assert "reg_3_1, reg_3_2, reg_3_0" in source


def test_kernel_3d_uses_two_thread_indices(star3d1r):
    source = generate_kernel(make_plan(star3d1r, bT=2, bS=(16, 16)))
    assert "threadIdx.y" in source and "threadIdx.x" in source
    assert "blockIdx.y" in source


def test_kernel_launch_bounds_with_register_limit(j2d5pt):
    source = generate_kernel(make_plan(j2d5pt, register_limit=64))
    assert "__launch_bounds__(64)" in source


def test_kernel_braces_balance(j2d5pt, star3d1r, box2d1r):
    for pattern in (j2d5pt, star3d1r, box2d1r):
        source = generate_kernel(make_plan(pattern, bS=(64,) if pattern.ndim == 2 else (16, 16)))
        assert source.count("{") == source.count("}")
        assert source.count("(") == source.count(")")


# -- host --------------------------------------------------------------------------


def test_host_launches_kernel_with_grid_and_block(j2d5pt):
    source = generate_host(make_plan(j2d5pt))
    assert "an5d_kernel_j2d5pt<<<__an5d_grid, __an5d_block>>>" in source
    assert "dim3" in source


def test_host_grid_uses_compute_region_divisor(j2d5pt):
    source = generate_host(make_plan(j2d5pt, bT=4, bS=(64,)))
    # compute region = 64 - 2*4 = 56
    assert "/ 56" in source


def test_host_swaps_buffers_per_launch(j2d5pt):
    source = generate_host(make_plan(j2d5pt))
    assert "__an5d_buf0 = __an5d_buf1" in source


def test_host_generates_remainder_branches(j2d5pt):
    source = generate_host(make_plan(j2d5pt, bT=4))
    for residual in (1, 2, 3):
        assert f"__an5d_remainder == {residual}" in source
    assert "__an5d_remainder == 4" not in source


def test_host_stream_division_loop(j2d5pt):
    source = generate_host(make_plan(j2d5pt, hS=512))
    assert "__an5d_hs_begin += 512" in source
    assert "min(__an5d_hs_begin + 512, __an5d_is0)" in source


def test_host_braces_balance(star3d1r):
    source = generate_host(make_plan(star3d1r, bS=(16, 16)))
    assert source.count("{") == source.count("}")


# -- package -------------------------------------------------------------------------


def test_package_bundles_kernel_and_host(j2d5pt):
    package = generate_cuda(make_plan(j2d5pt))
    assert package.kernel_name == "an5d_kernel_j2d5pt"
    assert package.host_name == "an5d_host_j2d5pt"
    assert package.kernel_source in package.full_source
    assert package.host_source in package.full_source


def test_package_nvcc_command_matches_paper_flags(j2d5pt):
    package = generate_cuda(make_plan(j2d5pt))
    command = package.nvcc_command(arch="sm_70", register_limit=64)
    assert "--use_fast_math" in command
    assert "arch=compute_70,code=sm_70" in command
    assert "-maxrregcount=64" in command


def test_hyphenated_names_are_sanitised():
    pattern = load_pattern("j2d9pt-gol")
    package = generate_cuda(make_plan(pattern, bS=(64,)))
    assert "j2d9pt_gol" in package.kernel_name
    assert "-" not in package.kernel_name
