"""The live observability plane: push streams, profiler, telemetry history.

Covers the acceptance contract of the streaming layer — per-job completions
pushed during a live campaign exactly once, stalled subscribers dropped
(never blocking the worker), disconnects detaching cleanly — plus the
sampling profiler, the store-backed telemetry/coverage tables, OpenMetrics
exemplars, and the sacred invariant: exports stay byte-identical with
streaming, profiling and telemetry history all switched on.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro import api
from repro.campaign.jobs import CampaignSpec
from repro.campaign.store import ResultStore
from repro.obs import (
    EVENTS,
    MetricsRegistry,
    PROFILER,
    SamplingProfiler,
    get_registry,
    profile_for,
    set_registry,
)
from repro.obs.events import EventLog
from repro.obs.metrics import parse_prometheus
from repro.obs.top import code_version_report, render_history, stream_records, telemetry_deltas
from repro.service import CampaignApp, CampaignServer, Request, WorkerSettings, campaign_id

#: Two-job campaign, small enough to run cold in a couple of seconds.
SPEC_JSON = {
    "benchmarks": ["j2d5pt", "star3d1r"],
    "gpus": ["V100"],
    "dtypes": ["float"],
    "kinds": ["tune"],
    "time_steps": 100,
    "interior_2d": [512, 512],
    "interior_3d": [48, 48, 48],
    "top_k": 2,
}

SPEC = CampaignSpec(
    benchmarks=("j2d5pt", "star3d1r"),
    gpus=("V100",),
    dtypes=("float",),
    kinds=("tune",),
    time_steps=100,
    interior_2d=(512, 512),
    interior_3d=(48, 48, 48),
    top_k=2,
)


def _request(server, path, method="GET", data=None):
    payload = json.dumps(data).encode() if data is not None else None
    request = urllib.request.Request(server.url + path, method=method, data=payload)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read(), dict(response.headers)


def _poll_done(server, cid, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body, _ = _request(server, f"/campaigns/{cid}")
        status = json.loads(body)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"campaign {cid} did not settle within {timeout}s")


# -- event subscriptions (unit) ------------------------------------------------


def test_subscription_receives_matching_events():
    log = EventLog()
    with log.subscribe(events="ping") as sub:
        log.emit("ping", n=1)
        log.emit("pong", n=2)  # filtered out
        log.emit("ping", n=3)
        first = sub.get(timeout=1.0)
        second = sub.get(timeout=1.0)
    assert first["event"] == "ping" and first["n"] == 1
    assert second["event"] == "ping" and second["n"] == 3
    assert log.subscriber_count == 0  # context manager detached it


def test_subscription_predicate_filters_on_emitting_thread():
    log = EventLog()
    with log.subscribe(predicate=lambda r: r.get("campaign") == "c1") as sub:
        log.emit("job_finished", campaign="c2")
        log.emit("job_finished", campaign="c1")
        record = sub.get(timeout=1.0)
        assert record["campaign"] == "c1"
        assert sub.get(timeout=0.05) is None


def test_slow_subscriber_drops_without_blocking_emitter():
    registry = MetricsRegistry()
    previous = get_registry()
    set_registry(registry)
    try:
        log = EventLog()
        sub = log.subscribe(maxsize=4)
        start = time.perf_counter()
        for index in range(200):
            log.emit("tick", index=index)
        elapsed = time.perf_counter() - start
    finally:
        set_registry(previous)
    # The emitter never waited on the stalled reader...
    assert elapsed < 1.0
    # ...the overflow was dropped and counted, and the queue still holds the
    # oldest undelivered events for whenever the reader catches up.
    assert sub.dropped == 196
    dropped = registry.counter(
        "stream_dropped_total", "drops", labels=("reason",)
    ).value(reason="slow_subscriber")
    assert dropped == 196
    assert sub.get(timeout=0.1)["index"] == 0
    sub.close()


def test_event_log_rotation_caps_file_size(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path=path, max_bytes=400, keep_rotated=2)
    for index in range(120):
        log.emit("tick", index=index, padding="x" * 40)
    # The loop may have ended exactly on a rotation (live file momentarily
    # absent); a couple more lines land a fresh live file either way.
    for index in range(120, 126):
        log.emit("tick", index=index, padding="x" * 40)
        if path.exists():
            break
    assert path.exists()
    assert path.stat().st_size <= 400 + 200  # live file capped (one line slack)
    rotated = sorted(p.name for p in tmp_path.glob("events.jsonl.*"))
    assert rotated and len(rotated) <= 2  # generations kept, oldest deleted
    # Every surviving line is intact JSON (rotation never splits a record).
    for candidate in [path, *tmp_path.glob("events.jsonl.*")]:
        for line in candidate.read_text().splitlines():
            assert json.loads(line)["event"] == "tick"


# -- sampling profiler ---------------------------------------------------------


def _burn(deadline):
    total = 0
    while time.monotonic() < deadline:
        total += sum(range(200))
    return total


def test_profiler_collects_folded_stacks():
    profiler = SamplingProfiler(hz=250.0)
    deadline = time.monotonic() + 0.4
    worker = threading.Thread(target=_burn, args=(deadline,))
    worker.start()
    profiler.start()
    try:
        worker.join()
    finally:
        profiler.stop()
    assert not profiler.running
    assert profiler.samples > 0
    folded = profiler.folded()
    assert folded
    for line in folded.splitlines():
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert all(":" in frame for frame in stack.split(";"))
    # The busy thread's frame shows up root-first somewhere in the stacks.
    assert "_burn" in folded


def test_profiler_window_samples_only_when_armed():
    profiler = SamplingProfiler(hz=200.0)
    with profiler.window("cold"):
        assert not profiler.running  # unarmed window is a no-op
    profiler.arm()
    try:
        with profiler.window("hot"):
            assert profiler.running
            time.sleep(0.05)
        assert not profiler.running
    finally:
        profiler.disarm()


def test_profile_for_returns_window_only_counts():
    registry = MetricsRegistry()
    profiler = SamplingProfiler(hz=250.0)
    deadline = time.monotonic() + 0.5
    worker = threading.Thread(target=_burn, args=(deadline,))
    worker.start()
    try:
        folded, samples = profile_for(
            0.3, hz=250.0, profiler=profiler, metrics=registry
        )
    finally:
        worker.join()
    assert samples > 0
    assert folded.strip()
    assert registry.counter("profile_windows_total", "w").value() == 1


# -- telemetry + coverage store tables ----------------------------------------


def test_store_telemetry_history_roundtrip(tmp_path):
    with ResultStore(tmp_path / "t.sqlite") as store:
        results_gen = store.generation("results")
        store.record_telemetry("i1", {"requests_total": {"": 1.0}}, code_version="v1", now=10.0)
        store.record_telemetry("i1", {"requests_total": {"": 5.0}}, code_version="v2", now=20.0)
        store.record_telemetry("i2", {"requests_total": {"": 2.0}}, code_version="v2", now=30.0)
        # Telemetry lives beside, never inside, the results namespace: the
        # results generation (report/export cache key) is untouched.
        assert store.generation("results") == results_gen
        assert store.generation("telemetry") == 3
        rows = store.telemetry_rows()
        assert [row["instance_id"] for row in rows] == ["i2", "i1", "i1"]  # newest first
        assert rows[-1]["snapshot"] == {"requests_total": {"": 1.0}}
        assert [r["code_version"] for r in store.telemetry_rows(code_version="v2")] == ["v2", "v2"]
        assert len(store.telemetry_rows(instance_id="i1")) == 2
        store.prune_telemetry(keep_last=1)
        survivors = store.telemetry_rows()
        assert len(survivors) == 1 and survivors[0]["instance_id"] == "i2"


def test_store_coverage_replace_is_idempotent(tmp_path):
    entries = {("star", "frontend_roundtrip"): (4, 4), ("box", "blocked_vs_reference"): (2, 1)}
    with ResultStore(tmp_path / "c.sqlite") as store:
        store.replace_coverage(entries)
        first = store.coverage_rows()
        store.replace_coverage(entries)
        assert store.coverage_rows() == first
    assert first == [
        {"family": "box", "check": "blocked_vs_reference", "runs": 2, "passed": 1},
        {"family": "star", "check": "frontend_roundtrip", "runs": 4, "passed": 4},
    ]


def test_fuzz_campaign_persists_coverage(tmp_path):
    store_path = tmp_path / "fuzz.sqlite"
    outcome, records = api.fuzz(seed=11, count=3, store=store_path, workers=1)
    assert records
    rows = api.fuzz_coverage(store_path)
    assert rows, "fuzz campaign left no coverage counters"
    checks = {row["check"] for row in rows}
    assert "frontend_roundtrip" in checks
    assert all(0 <= row["passed"] <= row["runs"] for row in rows)
    assert sum(row["runs"] for row in rows) == sum(
        len(record["payload"]["checks"]) for record in records
    )
    # Warm re-run: same results, same derived counters — nothing double counts.
    api.fuzz(seed=11, count=3, store=store_path, workers=1)
    assert api.fuzz_coverage(store_path) == rows


# -- telemetry delta report ----------------------------------------------------


def _snapshot(requests, p99):
    return {
        "requests_total": {'route="health"': requests},
        "request_seconds": {'route="health"': {"count": requests, "sum": 1.0, "p50": p99 / 2, "p95": p99, "p99": p99}},
    }


def test_telemetry_deltas_and_code_version_report():
    rows = [  # newest first, as telemetry_rows returns them
        {"instance_id": "i1", "code_version": "v2", "created_at": 30.0, "snapshot": _snapshot(30, 0.020)},
        {"instance_id": "i1", "code_version": "v2", "created_at": 20.0, "snapshot": _snapshot(10, 0.010)},
        {"instance_id": "i1", "code_version": "v1", "created_at": 10.0, "snapshot": _snapshot(4, 0.010)},
    ]
    deltas = telemetry_deltas(rows)
    assert len(deltas) == 2
    assert deltas[0]["requests_total"] == 20.0
    assert deltas[0]["requests_per_s"] == 2.0
    assert deltas[0]["req_p99_ms_delta"] == 10.0  # 10ms regression, surfaced
    versions = code_version_report(rows)
    assert [v["code_version"] for v in versions] == ["v2", "v1"]
    assert versions[0]["req_p99_ms"] == 20.0
    text = render_history(rows, deltas, versions)
    assert "telemetry history: 3 snapshot(s)" in text
    assert "code versions" in text


# -- OpenMetrics exemplars -----------------------------------------------------


def test_histogram_exemplar_renders_and_parses():
    registry = MetricsRegistry()
    latency = registry.histogram("request_seconds", "latency", labels=("route",))
    latency.observe(0.01, route="predict")
    latency.observe(0.02, exemplar="abcdef123456", route="predict")
    text = registry.render()
    assert '# {trace_id="abcdef123456"}' in text
    # The strict parser still round-trips an exemplar-bearing exposition,
    # and the exemplar does not change any sample value.
    samples = parse_prometheus(text)
    total = sum(value for _, value in samples["request_seconds_count"])
    assert total == 2.0


# -- service endpoints (no socket) ---------------------------------------------


@pytest.fixture()
def app(tmp_path):
    application = CampaignApp(
        store=tmp_path / "app.sqlite",
        settings=WorkerSettings(workers=1, concurrency=1),
    )
    yield application
    application.close()


def test_profile_endpoint_returns_folded_stacks(app):
    response = app.handle(Request("GET", "/profile", query={"seconds": "0.1"}))
    assert response.status == 200
    assert response.content_type.startswith("text/plain")
    assert int(response.headers["X-Profile-Samples"]) >= 0
    response = app.handle(Request("GET", "/profile", query={"seconds": "9000"}))
    assert response.status == 400


def test_telemetry_history_endpoint(app):
    assert app.record_telemetry_snapshot() is not None
    app.metrics.counter("requests_total", "r", labels=("route", "method", "code")).inc(
        route="health", method="GET", code="200"
    )
    assert app.record_telemetry_snapshot() is not None
    response = app.handle(Request("GET", "/telemetry/history"))
    assert response.status == 200
    payload = json.loads(response.body)
    assert len(payload["snapshots"]) == 2
    assert len(payload["deltas"]) == 1
    assert payload["deltas"][0]["requests_total"] == 1.0
    assert payload["code_versions"]


def test_events_stream_ends_after_max_events(app):
    response = app.handle(
        Request("GET", "/events/stream", query={"max_events": "2", "timeout": "10"})
    )
    assert response.stream is not None
    lines = []

    def consume():
        for chunk in response.stream:
            if chunk.strip():
                lines.append(json.loads(chunk))

    reader = threading.Thread(target=consume)
    reader.start()
    time.sleep(0.1)
    EVENTS.emit("stream_test_alpha", n=1)
    EVENTS.emit("stream_test_beta", n=2)
    reader.join(timeout=5.0)
    assert not reader.is_alive()
    assert [record["event"] for record in lines] == [
        "stream_test_alpha", "stream_test_beta"
    ]


def test_mid_stream_disconnect_detaches_subscriber(app):
    baseline = EVENTS.subscriber_count
    response = app.handle(Request("GET", "/events/stream", query={"timeout": "30"}))
    iterator = iter(response.stream)
    assert next(iterator) == b"\n"  # keep-alive while idle
    assert EVENTS.subscriber_count == baseline + 1
    # The client vanishes: closing the generator (what the chunked sender
    # does in its finally) must detach the subscription immediately.
    response.stream.close()
    assert EVENTS.subscriber_count == baseline


def test_campaign_stream_unknown_campaign_404(app):
    response = app.handle(
        Request("GET", "/campaigns/nope/stream", query={})
    )
    assert response.status == 404
    assert EVENTS.subscriber_count == 0


# -- streaming during a live campaign (real HTTP) ------------------------------


@pytest.fixture()
def server(tmp_path):
    with CampaignServer(
        host="127.0.0.1", port=0, store=tmp_path / "service.sqlite",
        settings=WorkerSettings(workers=1, concurrency=2),
        telemetry_interval=0.2,
    ) as running:
        yield running


def test_campaign_stream_yields_every_job_exactly_once(server):
    cid = campaign_id(SPEC)
    records = []
    errors = []

    def consume():
        url = f"{server.url}/campaigns/{cid}/stream?wait=1&timeout=60"
        try:
            records.extend(stream_records(url, timeout=30.0))
        except Exception as error:  # noqa: BLE001 — surfaced in the assert
            errors.append(error)

    reader = threading.Thread(target=consume)
    reader.start()
    time.sleep(0.2)  # subscribe strictly before any job can finish
    status, body, _ = _request(server, "/campaigns", method="POST", data=SPEC_JSON)
    assert status == 202 and json.loads(body)["id"] == cid
    reader.join(timeout=60.0)
    assert not reader.is_alive() and not errors
    by_event = {}
    for record in records:
        by_event.setdefault(record["event"], []).append(record)
    assert [r["campaign"] for r in by_event["stream_open"]] == [cid]
    assert len(by_event["campaign_run_started"]) == 1
    jobs = by_event["job_finished"]
    assert len(jobs) == SPEC.size() == 2  # every job pushed...
    assert len({job["key"] for job in jobs}) == 2  # ...exactly once
    assert all(job["status"] == "ok" and job["campaign"] == cid for job in jobs)
    # The stream ended on the terminal record, after every job line.
    assert records[-1]["event"] == "campaign_run_finished"
    assert records[-1]["ok"] is True


def test_exports_byte_identical_with_full_observability_on(server, tmp_path):
    # Solo reference run: same spec, fresh store, no service, no obs extras.
    solo_store = tmp_path / "solo.sqlite"
    api.campaign(store=solo_store, **{
        "benchmarks": SPEC_JSON["benchmarks"],
        "gpus": SPEC_JSON["gpus"],
        "dtypes": SPEC_JSON["dtypes"],
        "kinds": SPEC_JSON["kinds"],
        "time_steps": SPEC_JSON["time_steps"],
        "interior_2d": SPEC_JSON["interior_2d"],
        "interior_3d": SPEC_JSON["interior_3d"],
        "top_k": SPEC_JSON["top_k"],
    })
    with ResultStore(solo_store) as store:
        solo_lines = "".join(
            store.record_line(record) + "\n" for record in store.export_records()
        ).encode()

    # Service run with the whole observability plane on: telemetry history
    # snapshots ticking (fixture), profiler armed, and a deliberately stalled
    # stream subscriber attached for the entire campaign.
    stalled = EVENTS.subscribe(maxsize=1)
    PROFILER.arm()
    try:
        status, body, _ = _request(server, "/campaigns", method="POST", data=SPEC_JSON)
        assert status == 202
        cid = json.loads(body)["id"]
        assert _poll_done(server, cid)["state"] == "done"
        _, export, _ = _request(server, f"/campaigns/{cid}/export")
    finally:
        PROFILER.disarm()
        stalled.close()
    assert export == solo_lines
    # And the history really accumulated while the campaign ran.
    time.sleep(0.3)
    _, history, _ = _request(server, "/telemetry/history")
    assert json.loads(history)["snapshots"]


def test_slow_http_subscriber_never_wedges_the_worker(server):
    # A subscriber with a one-slot queue that never reads: the campaign must
    # finish at full speed and the overflow must be counted, not waited on.
    stalled = EVENTS.subscribe(maxsize=1)
    try:
        status, body, _ = _request(server, "/campaigns", method="POST", data=SPEC_JSON)
        assert status == 202
        done = _poll_done(server, json.loads(body)["id"], timeout=60.0)
        assert done["state"] == "done"
        assert stalled.dropped > 0
    finally:
        stalled.close()
