"""Tests for the compiled-expression engine and the rewritten executors.

The contract under test: every kernel engine (fused NumPy, native C,
interpreter) is *bit-identical*, and the double-buffered, dependency-cone
tile loop of :class:`BlockedStencilExecutor` produces byte-for-byte the same
results as the seed implementation (full-region interpretation with a copy
per combined time step), which is replicated inline here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BlockingConfig
from repro.ir.compile import (
    CompiledKernel,
    InterpretedKernel,
    compile_pattern,
    native_supported,
    _native_compiler,
)
from repro.ir.expr import BinOp, Call, Const, GridRead, UnaryOp
from repro.ir.stencil import GridSpec
from repro.sim.executor import BlockedStencilExecutor
from repro.stencils.library import BENCHMARKS, load_pattern
from repro.stencils.reference import (
    _CALL_NUMPY,
    ReferenceExecutor,
    make_initial_grid,
    max_relative_error,
    numpy_dtype,
)

ALL_BENCHMARKS = sorted(BENCHMARKS)
DTYPES = ("float", "double")


def _sample_region(pattern, dtype, seed=0):
    rng = np.random.default_rng(seed)
    rad = pattern.radius
    shape = tuple(10 + 2 * rad for _ in range(pattern.ndim))
    src = rng.uniform(0.1, 1.0, size=shape).astype(numpy_dtype(dtype))
    region = tuple(slice(rad, dim - rad) for dim in shape)
    return src, region


# ---------------------------------------------------------------------------
# Property: every engine is bit-identical to the interpreter
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_compiled_engine_bit_identical_to_interpreter(name, dtype):
    pattern = load_pattern(name, dtype)
    src, region = _sample_region(pattern, dtype)
    out_shape = tuple(s.stop - s.start for s in region)

    interpreted = np.empty(out_shape, dtype=src.dtype)
    compile_pattern(pattern, mode="interpreter")(src, region, interpreted)

    compiled = np.empty(out_shape, dtype=src.dtype)
    compile_pattern(pattern, mode="compiled")(src, region, compiled)
    assert np.array_equal(compiled, interpreted)


#: Representative shapes for the (toolchain-build-per-kernel) native engine:
#: a 3D star, a 3D box, a 2D second-order star and the sqrt/division stencil.
NATIVE_SPOT_CHECKS = ("star3d1r", "j3d27pt", "j2d9pt", "gradient2d")


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", NATIVE_SPOT_CHECKS)
def test_native_engine_bit_identical_to_interpreter(name, dtype):
    pattern = load_pattern(name, dtype)
    if _native_compiler() is None or not native_supported(pattern):
        pytest.skip("no native toolchain available")
    src, region = _sample_region(pattern, dtype)
    out_shape = tuple(s.stop - s.start for s in region)
    interpreted = np.empty(out_shape, dtype=src.dtype)
    compile_pattern(pattern, mode="interpreter")(src, region, interpreted)
    native = np.empty(out_shape, dtype=src.dtype)
    compile_pattern(pattern, mode="native")(src, region, native)
    assert np.array_equal(native, interpreted)


def test_compiled_kernel_reuses_scratch_and_cache():
    pattern = load_pattern("j2d5pt", "float")
    assert compile_pattern(pattern, mode="compiled") is compile_pattern(
        pattern, mode="compiled"
    )
    kernel = CompiledKernel(pattern, "float")
    src, region = _sample_region(pattern, "float")
    out = np.empty(tuple(s.stop - s.start for s in region), dtype=np.float32)
    kernel(src, region, out)
    scratch_before = kernel.scratch_for(out.shape)
    kernel(src, region, out)
    assert kernel.scratch_for(out.shape) is scratch_before
    assert kernel.num_scratch >= 1
    assert "def _stencil_kernel" in kernel.source


def test_interpreter_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_INTERPRET", "1")
    pattern = load_pattern("j2d9pt", "float")
    kernel = compile_pattern(pattern, mode="auto")
    assert isinstance(kernel, InterpretedKernel)


# ---------------------------------------------------------------------------
# Regression: blocked executor output is unchanged vs. the seed behaviour
# ---------------------------------------------------------------------------


def _seed_eval(pattern, dtype, local, region):
    """Verbatim logic of the seed's _evaluate_region."""

    def shifted(offset):
        return local[tuple(slice(s.start + o, s.stop + o) for s, o in zip(region, offset))]

    def ev(expr):
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=dtype)
        if isinstance(expr, GridRead):
            return shifted(expr.offset)
        if isinstance(expr, BinOp):
            lhs, rhs = ev(expr.lhs), ev(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, UnaryOp):
            return -ev(expr.operand)
        if isinstance(expr, Call):
            return _CALL_NUMPY[expr.name](*[ev(a) for a in expr.args])
        raise TypeError(f"unknown expression node {expr!r}")

    return ev(pattern.expr).astype(dtype)


def _seed_blocked_run(executor: BlockedStencilExecutor, initial, time_steps):
    """Verbatim logic of the seed's _run_tile / launch / run."""
    pattern, rad, dtype = executor.pattern, executor.radius, executor.dtype
    current = initial.astype(dtype, copy=True)
    for launch_steps in executor.launch_schedule(time_steps):
        destination = current.copy()
        for tile in executor.tiles(launch_steps):
            local = current[tuple(slice(lo, hi) for lo, hi in tile.load)].astype(
                dtype, copy=True
            )
            mask = [
                (max(lo, rad) - lo, min(hi, dim - rad) - lo)
                for (lo, hi), dim in zip(tile.load, current.shape)
            ]
            for _ in range(launch_steps):
                updated = local.copy()
                region = tuple(
                    slice(max(lo, rad), min(hi, local.shape[d] - rad))
                    for d, (lo, hi) in enumerate(mask)
                )
                if any(s.start >= s.stop for s in region):
                    break
                updated[region] = _seed_eval(pattern, dtype, local, region)
                local = updated
            store = tuple(slice(lo, hi) for lo, hi in tile.store)
            destination[store] = local[
                tuple(
                    slice(s_lo - l_lo, s_hi - l_lo)
                    for (s_lo, s_hi), (l_lo, _) in zip(tile.store, tile.load)
                )
            ]
        current = destination
    return current


@pytest.mark.parametrize(
    "name,dtype,interior,config,time_steps",
    [
        ("star3d1r", "float", (24, 24, 24), BlockingConfig(bT=4, bS=(12, 12)), 9),
        ("star3d1r", "double", (16, 20, 20), BlockingConfig(bT=2, bS=(10, 10), hS=8), 5),
        ("j3d27pt", "float", (12, 16, 16), BlockingConfig(bT=2, bS=(10, 10)), 4),
        ("j2d5pt", "float", (40, 40), BlockingConfig(bT=3, bS=(16,)), 7),
        ("j2d9pt", "double", (32, 32), BlockingConfig(bT=2, bS=(24,), hS=16), 5),
        ("gradient2d", "float", (30, 30), BlockingConfig(bT=2, bS=(12,)), 4),
        ("j2d9pt-gol", "float", (26, 26), BlockingConfig(bT=4, bS=(18,)), 6),
    ],
)
def test_blocked_executor_matches_seed_bitwise(name, dtype, interior, config, time_steps):
    pattern = load_pattern(name, dtype)
    grid = GridSpec(interior, time_steps)
    initial = make_initial_grid(pattern, grid, seed=7)
    executor = BlockedStencilExecutor(pattern, grid, config)
    new_result = executor.run(initial)
    seed_result = _seed_blocked_run(executor, initial, time_steps)
    assert new_result.dtype == seed_result.dtype
    assert np.array_equal(new_result, seed_result)


def test_reference_executor_double_buffered_matches_stepwise():
    pattern = load_pattern("j2d5pt", "float")
    grid = GridSpec((20, 20), 6)
    initial = make_initial_grid(pattern, grid, seed=3)
    executor = ReferenceExecutor(pattern)
    stepped = initial.astype(executor.dtype, copy=True)
    for _ in range(6):
        stepped = executor.step(stepped)
    assert np.array_equal(executor.run(initial, 6), stepped)


def test_blocked_executor_zero_steps_returns_copy():
    pattern = load_pattern("j2d5pt", "float")
    grid = GridSpec((16, 16), 0)
    initial = make_initial_grid(pattern, grid, seed=0)
    executor = BlockedStencilExecutor(pattern, grid, BlockingConfig(bT=2, bS=(12,)))
    result = executor.run(initial, 0)
    assert result is not initial
    assert np.array_equal(result, initial)


# ---------------------------------------------------------------------------
# max_relative_error: single-pass semantics and NaN guards
# ---------------------------------------------------------------------------


def test_max_relative_error_matches_direct_formula():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(37, 53)).astype(np.float64)
    b = a + rng.normal(scale=1e-9, size=a.shape)
    denom = np.maximum(np.abs(a), np.abs(b))
    denom = np.where(denom == 0, 1.0, denom)
    expected = float(np.max(np.abs(a - b) / denom))
    assert max_relative_error(a, b) == pytest.approx(expected, rel=1e-12)


def test_max_relative_error_handles_zeros_and_shape_mismatch():
    a = np.zeros(5)
    assert max_relative_error(a, a) == 0.0
    with pytest.raises(ValueError):
        max_relative_error(np.zeros(3), np.zeros(4))


def test_max_relative_error_nan_guard():
    a = np.array([1.0, np.nan, 2.0])
    matching = np.array([1.0, np.nan, 2.0])
    assert max_relative_error(a, matching) == 0.0
    mismatched = np.array([1.0, 5.0, 2.0])
    assert max_relative_error(a, mismatched) == float("inf")


def test_max_relative_error_streams_large_input():
    rng = np.random.default_rng(1)
    a = rng.uniform(1.0, 2.0, size=1 << 17).astype(np.float32)
    b = a.copy()
    b[-1] *= 1.5
    result = max_relative_error(a, b)
    assert 0.3 < result < 0.4
