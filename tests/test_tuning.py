"""Tests for the search space, pruning and the model-guided autotuner."""

import pytest

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.stencils.library import load_pattern
from repro.tuning.autotuner import AutoTuner, tune
from repro.tuning.pruning import prune_configurations, pruning_statistics
from repro.tuning.search_space import default_search_space, sconf_space


# The paper performs its parameter search on 8,192^2 grids with 120
# iterations (Section 6.3); the 3D search grid is kept at the full 512^3.
SMALL_2D_GRID = GridSpec((8192, 8192), 120)
SMALL_3D_GRID = GridSpec((512, 512, 512), 120)


# -- search space ---------------------------------------------------------------


def test_paper_search_space_sizes(j2d5pt, star3d1r):
    """Section 6.3: 144 configurations for 2D, 64 for 3D."""
    assert default_search_space(j2d5pt).size() == 16 * 3 * 3
    assert default_search_space(star3d1r).size() == 8 * 4 * 2


def test_search_space_enumeration_matches_size(j2d5pt):
    space = default_search_space(j2d5pt)
    assert len(list(space.configurations())) == space.size()


def test_search_space_with_register_limits(j2d5pt):
    space = default_search_space(j2d5pt)
    configs = list(space.configurations(include_register_limits=True))
    assert len(configs) == space.size() * len(space.register_limits)


def test_sconf_space_single_point(j2d5pt, star3d1r):
    assert sconf_space(j2d5pt).size() == 1
    assert sconf_space(star3d1r).size() == 1


# -- pruning ---------------------------------------------------------------------


def test_pruning_removes_invalid_configs(v100):
    pattern = load_pattern("star2d4r", "double")
    space = default_search_space(pattern)
    kept = prune_configurations(pattern, space.configurations(), v100)
    assert 0 < len(kept) < space.size()
    # bT = 16 with bS = 128 leaves no compute region for a radius-4 stencil.
    assert all(not (c.bT == 16 and c.bS == (128,)) for c in kept)


def test_pruning_statistics_add_up(j2d9pt, v100):
    space = default_search_space(j2d9pt)
    stats = pruning_statistics(j2d9pt, space.configurations(), v100)
    assert stats["total"] == space.size()
    assert stats["invalid"] + stats["register_pruned"] + stats["kept"] == stats["total"]


def test_pruning_register_rule_applies_to_double(v100):
    pattern = load_pattern("star2d4r", "double")
    space = default_search_space(pattern)
    stats = pruning_statistics(pattern, space.configurations(), v100)
    assert stats["register_pruned"] > 0


# -- autotuner -------------------------------------------------------------------------


def test_rank_orders_by_predicted_performance(j2d5pt, v100):
    tuner = AutoTuner(v100)
    ranked = tuner.rank(j2d5pt, SMALL_2D_GRID)
    predicted = [c.predicted_gflops for c in ranked]
    assert predicted == sorted(predicted, reverse=True)
    assert ranked[0].measured is None


def test_tune_returns_best_of_topk(j2d5pt):
    result = tune(j2d5pt, SMALL_2D_GRID, "V100", top_k=3)
    assert len(result.top_candidates) == 3
    best_measured = max(c.measured_gflops for c in result.top_candidates)
    assert result.best.measured_gflops == best_measured


def test_tuned_beats_sconf(j2d5pt):
    from repro.core.config import sconf_configuration
    from repro.sim.timing import simulate_performance

    result = tune(j2d5pt, SMALL_2D_GRID, "V100")
    sconf = simulate_performance(j2d5pt, SMALL_2D_GRID, sconf_configuration(j2d5pt), "V100")
    assert result.best.measured_gflops >= sconf.gflops * 0.95


def test_tuned_2d_prefers_high_temporal_blocking(j2d5pt):
    """Fig. 8 / Table 5: first-order 2D stencils tune to bT around 8-13."""
    result = tune(j2d5pt, SMALL_2D_GRID, "V100")
    assert result.best_config.bT >= 6


def test_tuned_3d_box_prefers_low_temporal_blocking():
    """Table 5: high-order 3D box stencils peak at bT = 1."""
    pattern = load_pattern("box3d3r", "float")
    result = tune(pattern, SMALL_3D_GRID, "V100")
    assert result.best_config.bT <= 2


def test_model_accuracy_between_zero_and_one(j2d5pt):
    result = tune(j2d5pt, SMALL_2D_GRID, "V100")
    assert 0.2 < result.model_accuracy <= 1.0


def test_tuning_result_row_fields(j2d5pt):
    row = tune(j2d5pt, SMALL_2D_GRID, "V100").as_row()
    for key in ("pattern", "gpu", "dtype", "bT", "bS", "hS", "regs", "tuned_gflops", "model_gflops"):
        assert key in row


def test_explored_and_pruned_counts(j2d5pt):
    result = tune(j2d5pt, SMALL_2D_GRID, "V100")
    assert result.explored == 144
    assert 0 < result.pruned_to <= result.explored


def test_tuner_accepts_gpu_name_or_spec(j2d5pt, v100):
    by_name = AutoTuner("V100").tune(j2d5pt, SMALL_2D_GRID)
    by_spec = AutoTuner(v100).tune(j2d5pt, SMALL_2D_GRID)
    assert by_name.best_config == by_spec.best_config


def test_tuner_raises_when_nothing_valid(v100):
    # A radius-4 double-precision stencil with an artificially tiny space.
    from repro.tuning.search_space import SearchSpace

    pattern = load_pattern("star2d4r", "double")
    space = SearchSpace(time_blocks=(16,), spatial_blocks=((128,),), stream_blocks=(256,))
    with pytest.raises(ValueError):
        AutoTuner(v100).tune(pattern, SMALL_2D_GRID, space)


def test_register_limit_selection_changes_result(j2d5pt):
    result = tune(j2d5pt, SMALL_2D_GRID, "V100")
    limits = {c.config.register_limit for c in result.top_candidates}
    assert limits  # at least one limit choice was made per candidate
