"""Cluster layer tests: shard partitioning, registry, coordinator, end-to-end.

The acceptance contract of the cluster subsystem: a campaign sharded over
N cooperating instances on one store produces exports *byte-identical* to a
single-instance ``an5d campaign run``; killing a worker re-assigns its
shards and the campaign still completes; ``GET /cluster/status`` merges
per-instance progress.  The partition itself is property-tested over seeded
randomized campaigns: shard slices are pairwise disjoint and their union is
the full job set.
"""

import json
import random
import time
import urllib.request

import pytest

import repro
from repro.campaign.jobs import CampaignSpec
from repro.campaign.scheduler import CampaignScheduler, ShardPlan
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.cluster import (
    ClusterClient,
    ClusterConfig,
    ClusterCoordinator,
    ClusterError,
    ClusterHTTPError,
    InstanceRegistry,
    LocalCluster,
)
from repro.service import CampaignApp, Request, WorkerSettings
from repro.service.wire import WireError, decode_assignment

#: A model-only campaign: fast (batched engine), still multi-benchmark.
PREDICT_SPEC = CampaignSpec(
    benchmarks=("j2d5pt", "j2d9pt", "gradient2d", "star3d1r", "star3d2r", "j3d27pt"),
    gpus=("V100",),
    dtypes=("float",),
    kinds=("predict",),
    time_steps=100,
    interior_2d=(512, 512),
    interior_3d=(48, 48, 48),
)


# -- ShardPlan ------------------------------------------------------------------------


def test_shard_plan_validates_and_normalises():
    plan = ShardPlan(4, (2, 0, 2))
    assert plan.indices == (0, 2)  # deduped, sorted
    assert plan.describe() == "0+2/4"
    assert ShardPlan().is_full
    assert ShardPlan.from_json(plan.to_json()) == plan
    with pytest.raises(ValueError, match="at least 1"):
        ShardPlan(0, (0,))
    with pytest.raises(ValueError, match="at least one shard index"):
        ShardPlan(2, ())
    with pytest.raises(ValueError, match=r"lie in \[0, 2\)"):
        ShardPlan(2, (2,))
    with pytest.raises(ValueError, match="integers"):
        ShardPlan(2, ("x",))
    with pytest.raises(ValueError, match="unknown shard plan field"):
        ShardPlan.from_json({"shards": 2, "shard": 0})
    with pytest.raises(ValueError, match="JSON array"):
        ShardPlan.from_json({"shards": 2, "shard_indices": "01"})


def _random_spec(rng: random.Random) -> CampaignSpec:
    from repro.stencils.library import BENCHMARKS

    names = rng.sample(sorted(BENCHMARKS), k=rng.randint(2, 8))
    return CampaignSpec(
        benchmarks=tuple(names),
        gpus=tuple(rng.sample(("V100", "P100"), k=rng.randint(1, 2))),
        dtypes=tuple(rng.sample(("float", "double"), k=rng.randint(1, 2))),
        kinds=tuple(rng.sample(("predict", "tune", "baseline", "verify"), k=rng.randint(1, 3))),
        time_steps=rng.choice((100, 1000)),
    )


@pytest.mark.parametrize("seed", range(8))
def test_shard_slices_partition_every_campaign(seed):
    """Union of all shard slices == the full job set; slices are disjoint."""
    rng = random.Random(seed)
    spec = _random_spec(rng)
    expanded = [job.key() for job in spec.expand()]
    store = ResultStore(":memory:")
    for shards in (2, 3, 5):
        slices = [
            CampaignScheduler(spec, store, plan=ShardPlan(shards, (index,))).job_keys()
            for index in range(shards)
        ]
        merged = [key for piece in slices for key in piece]
        assert sorted(merged) == sorted(expanded)  # union covers everything
        assert len(merged) == len(set(merged))  # pairwise disjoint
    # A multi-index plan is exactly the union of its single-index slices.
    plan = ShardPlan(3, (0, 2))
    combined = CampaignScheduler(spec, store, plan=plan).job_keys()
    singles = [
        key
        for index in (0, 2)
        for key in CampaignScheduler(spec, store, plan=ShardPlan(3, (index,))).job_keys()
    ]
    assert sorted(combined) == sorted(singles)
    store.close()


# -- registry -------------------------------------------------------------------------


def test_registry_liveness_is_heartbeat_age(tmp_path):
    now = [1000.0]
    store = ResultStore(tmp_path / "registry.sqlite")
    registry = InstanceRegistry(store, liveness_timeout=5.0, clock=lambda: now[0])
    registry.register("w1", "127.0.0.1", 8001, role="worker", capabilities={"workers": 2})
    registry.register("c0", "127.0.0.1", 8000, role="coordinator")
    assert [i.instance_id for i in registry.live_workers()] == ["w1"]  # role filter
    now[0] += 4.0
    registry.heartbeat("w1")
    now[0] += 4.0  # w1 beat 4s ago (live); c0 is 8s stale (lapsed)
    assert [i.instance_id for i in registry.live()] == ["w1"]
    assert [i.instance_id for i in registry.lapsed()] == ["c0"]
    summaries = {s["instance_id"]: s for s in registry.summaries()}
    assert summaries["w1"]["live"] and not summaries["c0"]["live"]
    assert summaries["w1"]["capabilities"]["workers"] == 2
    assert summaries["w1"]["capabilities"]["version"] == repro.__version__
    assert registry.deregister("c0") and registry.get("c0") is None
    assert not registry.heartbeat("c0")  # unknown after deregistration
    store.close()


def test_store_submission_queue_round_trip(tmp_path):
    store = ResultStore(tmp_path / "queue.sqlite")
    store.enqueue_submission("c123", PREDICT_SPEC.canonical(), shards=3, now=10.0)
    row = store.get_submission("c123")
    assert row["state"] == "queued" and row["shards"] == 3
    assert CampaignSpec.from_json(json.loads(row["spec"])) == PREDICT_SPEC
    store.set_assignment("c123", 0, "w1")
    store.set_assignment("c123", 1, "w2")
    store.set_assignment("c123", 0, "w2")  # re-assignment overwrites
    assert [(r["shard_index"], r["instance_id"]) for r in store.assignment_rows("c123")] == [
        (0, "w2"),
        (1, "w2"),
    ]
    assert store.update_submission("c123", "done")
    # Re-opening keeps the original created_at (queue order is stable).
    store.enqueue_submission("c123", PREDICT_SPEC.canonical(), shards=2, now=99.0)
    row = store.get_submission("c123")
    assert row["state"] == "queued" and row["shards"] == 2 and row["created_at"] == 10.0
    assert store.clear_assignments("c123") == 2
    store.close()


# -- coordinator (stub client: no sockets) --------------------------------------------


class StubClient:
    """Records forwards; refuses instances listed in ``unreachable``."""

    def __init__(self):
        self.assignments = []  # (url, spec, plan)
        self.unreachable = set()
        self.rejecting = {}  # url -> HTTP status

    def assign(self, url, spec, plan, trace=None):
        if url in self.unreachable:
            raise ClusterError(f"unreachable peer {url}")
        if url in self.rejecting:
            raise ClusterHTTPError(self.rejecting[url], {"error": "no thanks"})
        self.assignments.append((url, spec, plan))
        return {"state": "queued"}


@pytest.fixture()
def coordinated(tmp_path):
    now = [0.0]
    store = ResultStore(tmp_path / "coord.sqlite")
    registry = InstanceRegistry(store, liveness_timeout=5.0, clock=lambda: now[0])
    client = StubClient()
    coordinator = ClusterCoordinator(store, registry, client=client)
    yield store, registry, client, coordinator, now
    store.close()


def test_coordinator_partitions_over_live_workers(coordinated):
    store, registry, client, coordinator, now = coordinated
    registry.register("w1", "h", 1, "worker")
    registry.register("w2", "h", 2, "worker")
    submitted = coordinator.submit(PREDICT_SPEC)
    assert submitted["state"] == "dispatched" and submitted["shards"] == 2
    owners = {r["shard_index"]: r["instance_id"] for r in store.assignment_rows(submitted["id"])}
    assert set(owners) == {0, 1} and set(owners.values()) == {"w1", "w2"}
    # Each worker was forwarded exactly its own single-shard plan.
    plans = {url: plan for url, _, plan in client.assignments}
    assert plans["http://h:1"].shards == 2 and plans["http://h:2"].shards == 2
    forwarded = {index for plan in plans.values() for index in plan.indices}
    assert forwarded == {0, 1}


def test_coordinator_rehomes_shards_of_unreachable_instance(coordinated):
    store, registry, client, coordinator, now = coordinated
    registry.register("w1", "h", 1, "worker")
    registry.register("w2", "h", 2, "worker")
    client.unreachable.add("http://h:2")  # w2 is registered but refuses
    submitted = coordinator.submit(PREDICT_SPEC)
    assert submitted["state"] == "dispatched"
    owners = {r["instance_id"] for r in store.assignment_rows(submitted["id"])}
    assert owners == {"w1"}  # both shards re-homed to the reachable worker
    # w1 ends up owning a widened multi-index plan over the same partition.
    final_plan = client.assignments[-1][2]
    assert final_plan.shards == 2 and final_plan.indices == (0, 1)


def test_coordinator_tick_reassigns_lapsed_and_settles(coordinated):
    store, registry, client, coordinator, now = coordinated
    registry.register("w1", "h", 1, "worker")
    registry.register("w2", "h", 2, "worker")
    submitted = coordinator.submit(PREDICT_SPEC)
    sid = submitted["id"]
    # w2's heartbeat lapses mid-campaign; w1 stays fresh.
    now[0] += 4.0
    registry.heartbeat("w1")
    now[0] += 2.0  # w2 is now 6s stale (> 5s timeout), w1 only 2s
    report = coordinator.tick()
    assert sid in report["redispatched"]
    owners = {r["instance_id"] for r in store.assignment_rows(sid)}
    assert owners == {"w1"}
    # Completing every job settles the submission on the next tick.
    scheduler = CampaignScheduler(PREDICT_SPEC, store)
    scheduler.run()
    report = coordinator.tick()
    assert sid in report["settled"]
    assert store.get_submission(sid)["state"] == "done"
    status = coordinator.submission_status(sid)
    assert status["jobs"]["pending"] == 0 and status["jobs"]["failed"] == 0


def test_coordinator_reforwards_stalled_submission(coordinated):
    """A live owner that lost the run (crash, restart under the same id)
    never lapses; no progress for STALL_TICKS ticks re-forwards its shards."""
    from repro.cluster.coordinator import STALL_TICKS

    store, registry, client, coordinator, now = coordinated
    registry.register("w1", "h", 1, "worker")
    submitted = coordinator.submit(PREDICT_SPEC)
    sid = submitted["id"]
    assert submitted["state"] == "dispatched"
    forwards_after_submit = len(client.assignments)
    for _ in range(STALL_TICKS):
        registry.heartbeat("w1")  # the owner stays live the whole time
        report = coordinator.tick()
        assert sid not in report["redispatched"]  # not stalled yet
    report = coordinator.tick()
    assert sid in report["redispatched"]  # no progress for STALL_TICKS ticks
    assert len(client.assignments) > forwards_after_submit
    # Progress resets the stall counter: settle one job, then tick again.
    scheduler = CampaignScheduler(PREDICT_SPEC, store)
    store.put(scheduler.jobs()[0], {"x": 1})
    report = coordinator.tick()
    assert sid not in report["redispatched"]


def test_coordinator_fails_submission_on_deterministic_rejection(coordinated):
    """A structured 4xx from a worker is not unreachability: retrying the
    same doomed assignment forever would hide the error from the submitter."""
    store, registry, client, coordinator, now = coordinated
    registry.register("w1", "h", 1, "worker")
    client.rejecting["http://h:1"] = 400
    submitted = coordinator.submit(PREDICT_SPEC)
    assert submitted["state"] == "failed"
    # The next tick leaves it failed instead of re-dispatching it.
    report = coordinator.tick()
    assert submitted["id"] not in report["redispatched"]
    # A transient 5xx, by contrast, is retried like unreachability.
    client.rejecting["http://h:1"] = 503
    store.update_submission(submitted["id"], "queued")
    report = coordinator.tick()
    assert store.get_submission(submitted["id"])["state"] == "queued"
    # Instance-specific rejections (404 old binary, 409 wrong role) exclude
    # that instance only: a healthy peer still receives the whole campaign.
    client.rejecting["http://h:1"] = 409
    registry.register("w2", "h", 2, "worker")
    report = coordinator.tick()
    assert store.get_submission(submitted["id"])["state"] == "dispatched"
    owners = {r["instance_id"] for r in store.assignment_rows(submitted["id"])}
    assert owners == {"w2"}


def test_coordinator_with_no_workers_keeps_submission_queued(coordinated):
    store, registry, client, coordinator, now = coordinated
    submitted = coordinator.submit(PREDICT_SPEC)
    assert submitted["state"] == "queued" and submitted["shards"] == 1
    # Workers appear; the next tick re-partitions the never-dispatched
    # submission for the current membership and fans it out.
    registry.register("w1", "h", 1, "worker")
    registry.register("w2", "h", 2, "worker")
    report = coordinator.tick()
    assert submitted["id"] in report["redispatched"]
    row = store.get_submission(submitted["id"])
    assert row["state"] == "dispatched" and row["shards"] == 2
    owners = {r["instance_id"] for r in store.assignment_rows(submitted["id"])}
    assert owners == {"w1", "w2"}


# -- wire-level shard validation (HTTP 400, not 500) ----------------------------------


def test_decode_assignment_maps_shard_errors_to_400():
    spec_json = PREDICT_SPEC.to_json()
    good = json.dumps({"spec": spec_json, "shards": 3, "shard_indices": [1, 2]})
    spec, plan, trace = decode_assignment(good.encode())
    assert spec == PREDICT_SPEC and plan == ShardPlan(3, (1, 2))
    assert trace is None
    for envelope, fragment in (
        ({"spec": spec_json, "shards": 0}, "at least 1"),
        ({"spec": spec_json, "shards": 2, "shard_indices": [2]}, "lie in"),
        ({"spec": spec_json, "shards": 2, "shard_indices": []}, "at least one"),
        ({"spec": spec_json, "shard": 0}, "unknown assignment field"),
        ({"shards": 2}, "missing its campaign"),
        ({"spec": {"benchmark": ["x"]}, "shards": 2}, "invalid campaign spec"),
    ):
        with pytest.raises(WireError, match=fragment) as excinfo:
            decode_assignment(json.dumps(envelope).encode())
        assert excinfo.value.status == 400


def test_assigned_campaign_http_contract(tmp_path):
    app = CampaignApp(tmp_path / "app.sqlite", WorkerSettings())
    app.start()
    try:
        bad = Request(
            "POST",
            "/campaigns/assigned",
            body=json.dumps(
                {"spec": PREDICT_SPEC.to_json(), "shards": 2, "shard_indices": [5]}
            ).encode(),
        )
        response = app.handle(bad)
        assert response.status == 400
        assert "shard plan" in json.loads(response.body)["error"]
        good = Request(
            "POST",
            "/campaigns/assigned",
            body=json.dumps(
                {"spec": PREDICT_SPEC.to_json(), "shards": 2, "shard_indices": [0]}
            ).encode(),
        )
        response = app.handle(good)
        assert response.status == 202
        payload = json.loads(response.body)
        assert payload["shard_plan"] == {"shards": 2, "shard_indices": [0]}
        assert 0 < payload["jobs"] < PREDICT_SPEC.size()
        # Cluster endpoints on a non-member are a structured 409.
        response = app.handle(Request("GET", "/cluster/status"))
        assert response.status == 409
        assert "not a cluster member" in json.loads(response.body)["error"]
    finally:
        app.close()


def test_worker_settings_shard_validation_fails_at_construction(tmp_path):
    from repro.service import CampaignWorker

    store = ResultStore(":memory:")
    with pytest.raises(ValueError, match="lie in"):
        CampaignWorker(store, WorkerSettings(shards=2, shard_index=2))
    store.close()


# -- end-to-end: cooperating instances over real HTTP ---------------------------------


def _wait_submission(client, url, sid, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.submission_status(url, sid)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"submission {sid} did not settle within {timeout}s")


def _single_instance_export(tmp_path, spec=PREDICT_SPEC):
    """The reference artifact: one `an5d campaign run` + export."""
    store_path = tmp_path / "solo.sqlite"
    with ResultStore(store_path) as store:
        outcome = CampaignScheduler(spec, store).run()
        assert outcome.ok
        export_path = store.export_jsonl(tmp_path / "solo.jsonl")
    return export_path.read_bytes()


def test_three_instance_cluster_export_is_byte_identical(tmp_path):
    client = ClusterClient()
    with LocalCluster(store=tmp_path / "cluster.sqlite", instances=3) as cluster:
        submitted = client.submit(cluster.url, PREDICT_SPEC)
        sid = submitted["id"]
        assert submitted["shards"] == 3
        status = _wait_submission(client, cluster.url, sid)
        assert status["state"] == "done"
        assert status["jobs"] == {
            "total": PREDICT_SPEC.size(),
            "done": PREDICT_SPEC.size(),
            "failed": 0,
            "pending": 0,
        }
        # /cluster/status merges per-instance progress over the whole matrix.
        merged = client.cluster_status(cluster.url)
        live = [i for i in merged["instances"] if i["live"]]
        assert len(live) == 4  # 3 workers + the coordinator
        per_instance = {
            iid: slice_["progress"]
            for submission in merged["submissions"]
            for iid, slice_ in submission["instances"].items()
        }
        assert sum(p["total"] for p in per_instance.values()) == PREDICT_SPEC.size()
        assert all(p["pending"] == 0 for p in per_instance.values())
        exported = client.export(cluster.url, sid)
    assert exported == _single_instance_export(tmp_path)


def test_cluster_survives_killed_worker(tmp_path):
    """A dead instance's shards re-home and the campaign still completes."""
    client = ClusterClient()
    with LocalCluster(store=tmp_path / "kill.sqlite", instances=2) as cluster:
        victim = cluster.workers[1]
        victim_id = victim.app.cluster.instance_id
        survivor_id = cluster.workers[0].app.cluster.instance_id
        # Kill between registration and dispatch: the registry still lists the
        # victim as live (fresh heartbeat), so the coordinator plans work onto
        # it, the forward fails, and the shards re-home deterministically.
        victim.kill()
        submitted = client.submit(cluster.url, PREDICT_SPEC)
        sid = submitted["id"]
        assert submitted["shards"] == 2  # partitioned for both instances
        status = _wait_submission(client, cluster.url, sid)
        assert status["state"] == "done"
        assert status["jobs"]["done"] == PREDICT_SPEC.size()
        assert set(status["instances"]) == {survivor_id}
        assert status["instances"][survivor_id]["shard_indices"] == [0, 1]
        exported = client.export(cluster.url, sid)
    assert exported == _single_instance_export(tmp_path)
    assert victim_id != survivor_id


def _wait_worker_run(client, worker_url, cid, runs, timeout=60.0):
    """Poll one worker until its latest (>= ``runs``-th) run has settled.

    The coordinator settles a warm re-submission from store state alone, so
    the worker's own record may still be re-running; its outcome is only
    meaningful once ``state == done`` *for the re-submitted run*.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = client.request(f"{worker_url}/campaigns/{cid}")
        payload = json.loads(body)
        if payload["state"] in ("done", "failed") and payload["runs"] >= runs:
            return payload
        time.sleep(0.05)
    raise AssertionError(f"worker {worker_url} run {runs} of {cid} did not settle")


def test_resubmission_is_served_warm_across_the_cluster(tmp_path):
    client = ClusterClient()
    with LocalCluster(store=tmp_path / "warm.sqlite", instances=2) as cluster:
        first = client.submit(cluster.url, PREDICT_SPEC)
        _wait_submission(client, cluster.url, first["id"])
        results_after_cold = cluster.store.count()
        second = client.submit(cluster.url, PREDICT_SPEC)
        assert second["id"] == first["id"]  # same content address
        status = _wait_submission(client, cluster.url, second["id"])
        assert status["state"] == "done"
        assert cluster.store.count() == results_after_cold  # nothing recomputed
        # Every worker's warm run was a 100% cache hit.
        for worker in cluster.workers:
            payload = _wait_worker_run(client, worker.url, first["id"], runs=2)
            assert payload["state"] == "done"
            assert payload["outcome"]["cache_hit_rate"] == 1.0


def test_worker_role_rejects_cluster_submission(tmp_path):
    with LocalCluster(store=tmp_path / "roles.sqlite", instances=1) as cluster:
        worker_url = cluster.worker_urls[0]
        request = urllib.request.Request(
            worker_url + "/cluster/campaigns",
            method="POST",
            data=json.dumps(PREDICT_SPEC.to_json()).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 409
        assert "not a coordinator" in json.loads(excinfo.value.read())["error"]


# -- campaign prune (code-version maintenance) ----------------------------------------


def test_store_code_version_maintenance(tmp_path):
    spec = PREDICT_SPEC
    store = ResultStore(tmp_path / "versions.sqlite")
    jobs = spec.expand()
    for job in jobs[:2]:
        store.put(job, {"x": 1}, code_version="0.0.0-old")
    for job in jobs:
        store.put(job, {"x": 2})
    versions = store.code_versions()
    assert versions == {"0.0.0-old": 2, repro.__version__: len(jobs)}
    assert store.purge_code_version("0.0.0-old") == 2
    assert store.code_versions() == {repro.__version__: len(jobs)}
    store.close()


def test_cli_campaign_prune(tmp_path, capsys):
    store_path = tmp_path / "prune.sqlite"
    jobs = PREDICT_SPEC.expand()
    with ResultStore(store_path) as store:
        for job in jobs[:3]:
            store.put(job, {"x": 1}, code_version="0.0.0-old")
        for job in jobs:
            store.put(job, {"x": 2})
    # Listing only.
    assert main(["campaign", "prune", "--store", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "0.0.0-old" in out and "stale" in out and "current" in out
    # Dry run drops nothing.
    assert main(
        ["campaign", "prune", "--store", str(store_path), "--stale", "--dry-run"]
    ) == 0
    assert "would drop 3" in capsys.readouterr().out
    with ResultStore(store_path) as store:
        assert store.count() == len(jobs) + 3
    # Pruning the current version requires --force.
    assert main(
        ["campaign", "prune", "--store", str(store_path),
         "--code-version", repro.__version__]
    ) == 2
    assert "--force" in capsys.readouterr().err
    # Dropping the stale version keeps the current results intact.
    assert main(["campaign", "prune", "--store", str(store_path), "--stale"]) == 0
    assert "dropped 3" in capsys.readouterr().out
    with ResultStore(store_path) as store:
        assert store.code_versions() == {repro.__version__: len(jobs)}
    # Unknown store path is a usage error.
    assert main(["campaign", "prune", "--store", str(tmp_path / "nope.sqlite")]) == 2
    capsys.readouterr()
