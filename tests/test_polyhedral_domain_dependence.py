"""Tests for iteration domains, dependence analysis and schedules."""

import pytest

from repro.ir.stencil import GridSpec
from repro.polyhedral.dependence import (
    dependence_cone_volume,
    flow_dependences,
    max_negative_reach,
    required_halo,
    tiling_is_legal,
)
from repro.polyhedral.domain import block_domain, stencil_iteration_domain
from repro.polyhedral.schedule import (
    Band,
    an5d_schedule,
    initial_schedule,
    loop_tiling_schedule,
    tile_band,
)
from repro.stencils.generators import box_stencil, star_stencil


# -- iteration domains ---------------------------------------------------------


def test_domain_extents(j2d5pt):
    grid = GridSpec((64, 48), 10)
    domain = stencil_iteration_domain(j2d5pt, grid)
    assert domain.ndim == 2
    assert domain.spatial_extent(0) == 64
    assert domain.spatial_extent(1) == 48
    assert domain.time_extent() == 10
    assert domain.total_updates() == 64 * 48 * 10


def test_domain_dimension_mismatch_rejected(j2d5pt):
    with pytest.raises(ValueError):
        stencil_iteration_domain(j2d5pt, GridSpec((8, 8, 8), 2))


def test_domain_restrict_time(j2d5pt):
    domain = stencil_iteration_domain(j2d5pt, GridSpec((16, 16), 10))
    restricted = domain.restrict_time(2, 6)
    assert restricted.time_extent() == 4
    assert restricted.cells_per_time_step() == 256


def test_block_domain_clips_to_grid(j2d5pt):
    grid = GridSpec((10, 10), 1)
    block = block_domain(j2d5pt, grid, (8, 8), (4, 4))
    # Only the 2x2 corner survives clipping.
    assert block.count() == 4


# -- dependences ------------------------------------------------------------------


def test_flow_dependences_negate_offsets(j2d5pt):
    deps = {d.space for d in flow_dependences(j2d5pt)}
    assert (1, 0) in deps and (-1, 0) in deps and (0, 0) in deps
    assert all(d.time == 1 for d in flow_dependences(j2d5pt))


def test_dependences_are_lexicographically_positive(box2d1r, star3d1r):
    for pattern in (box2d1r, star3d1r):
        assert all(d.is_lexicographically_positive for d in flow_dependences(pattern))


def test_max_negative_reach_equals_radius(j2d9pt, star3d1r):
    assert max_negative_reach(j2d9pt) == (2, 2)
    assert max_negative_reach(star3d1r) == (1, 1, 1)


@pytest.mark.parametrize("bT", [1, 2, 4, 10])
def test_required_halo_scales_linearly(bT, j2d5pt):
    assert required_halo(j2d5pt, bT) == (bT, bT)


def test_required_halo_rejects_zero_time_block(j2d5pt):
    with pytest.raises(ValueError):
        required_halo(j2d5pt, 0)


def test_tiling_legality_requires_compute_region(j2d5pt):
    assert tiling_is_legal(j2d5pt, 4, (32,), blocked_dims=(1,))
    assert not tiling_is_legal(j2d5pt, 16, (32,), blocked_dims=(1,))


def test_tiling_legality_dimension_mismatch(j2d5pt):
    with pytest.raises(ValueError):
        tiling_is_legal(j2d5pt, 2, (32, 32), blocked_dims=(0,))


def test_dependence_cone_volume_box_vs_star():
    star = star_stencil(2, 1)
    box = box_stencil(2, 1)
    assert dependence_cone_volume(star, 2) == dependence_cone_volume(box, 2) == 25


# -- schedules -------------------------------------------------------------------------


def test_initial_schedule_loop_order():
    tree = initial_schedule("t", ("i", "j"))
    assert tree.loop_order == ("t", "i", "j")


def test_tile_band_validates_sizes():
    band = Band(("i", "j"))
    with pytest.raises(ValueError):
        tile_band(band, (0, 4))
    tiled = tile_band(band, (8, 8), overlapped=True)
    assert tiled.is_tiled and tiled.overlapped


def test_band_tile_size_arity_checked():
    with pytest.raises(ValueError):
        Band(("i",), tile_sizes=(4, 4))


def test_band_streamed_member_must_belong():
    with pytest.raises(ValueError):
        Band(("i",), streamed_member="j")


def test_an5d_schedule_marks_streaming_dimension():
    tree = an5d_schedule("t", ("k", "i", "j"), time_block=4, spatial_blocks=(32, 32), stream_block=128)
    time_band, space_band = tree.bands
    assert time_band.tile_sizes == (4,)
    assert space_band.streamed_member == "k"
    assert space_band.overlapped


def test_an5d_schedule_without_stream_division():
    tree = an5d_schedule("t", ("i", "j"), time_block=4, spatial_blocks=(128,), stream_block=None)
    assert tree.bands[1].tile_sizes == (0, 128)


def test_an5d_schedule_arity_check():
    with pytest.raises(ValueError):
        an5d_schedule("t", ("i", "j"), 4, (32, 32), 128)


def test_loop_tiling_schedule_not_overlapped():
    tree = loop_tiling_schedule("t", ("i", "j"), (32, 32))
    assert not tree.bands[1].overlapped
    assert tree.bands[1].tile_sizes == (32, 32)


def test_loop_tiling_schedule_arity_check():
    with pytest.raises(ValueError):
        loop_tiling_schedule("t", ("i", "j"), (32,))


def test_replace_band():
    tree = initial_schedule("t", ("i",))
    new_tree = tree.replace_band(0, tile_band(tree.bands[0], (4,)))
    assert new_tree.bands[0].tile_sizes == (4,)
    assert tree.bands[0].tile_sizes is None
