"""Tests for register allocation and shared-memory planning (Table 1, Fig. 3)."""

import pytest

from repro.core.config import BlockingConfig
from repro.core.register_alloc import (
    FixedRegisterAllocation,
    ShiftingRegisterAllocation,
    data_movement_ratio,
)
from repro.core.shared_memory import (
    an5d_shared_memory_plan,
    footprint_ratio,
    stencilgen_shared_memory_plan,
    synchronizations_per_subplane,
)


# -- register allocation -----------------------------------------------------


def test_fixed_allocation_single_store_per_update():
    assert FixedRegisterAllocation(4, 1).moves_per_update() == 1
    assert FixedRegisterAllocation(4, 3).moves_per_update() == 1


def test_shifting_allocation_moves_grow_with_radius():
    assert ShiftingRegisterAllocation(4, 1).moves_per_update() == 3
    assert ShiftingRegisterAllocation(4, 2).moves_per_update() == 5


def test_data_movement_ratio():
    assert data_movement_ratio(1) == 3.0
    assert data_movement_ratio(4) == 9.0


def test_register_counts_scale_with_bt_and_radius():
    assert FixedRegisterAllocation(4, 1).registers_per_thread == 4 * 3
    assert FixedRegisterAllocation(10, 2).registers_per_thread == 10 * 5


def test_allocation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FixedRegisterAllocation(0, 1)
    with pytest.raises(ValueError):
        ShiftingRegisterAllocation(1, 0)


def test_all_registers_names_follow_fig5_convention():
    names = [r.name for r in FixedRegisterAllocation(2, 1).all_registers()]
    assert "reg_0_0" in names and "reg_1_2" in names


def test_rotation_cycles_with_period():
    alloc = FixedRegisterAllocation(4, 1)
    period = alloc.slots_per_step
    assert alloc.rotation(0) == alloc.rotation(period)
    assert alloc.rotation(1) != alloc.rotation(0)
    # Every rotation is a permutation of the slots.
    for i in range(period):
        assert sorted(alloc.rotation(i)) == list(range(period))


def test_store_argument_sequence_rotates():
    alloc = FixedRegisterAllocation(4, 1)
    seq0 = alloc.store_argument_sequence(0, 3)
    seq1 = alloc.store_argument_sequence(1, 3)
    assert set(seq0) == set(seq1) == {"reg_3_0", "reg_3_1", "reg_3_2"}
    assert seq0 != seq1


def test_shifting_arguments_do_not_rotate():
    alloc = ShiftingRegisterAllocation(4, 1)
    assert alloc.store_argument_sequence(0, 3) == alloc.store_argument_sequence(5, 3)


def test_destination_slot_follows_rotation():
    alloc = FixedRegisterAllocation(4, 2)
    for i in range(10):
        assert alloc.destination_slot(i) == alloc.rotation(i)[-1]


# -- shared memory (Table 1) ----------------------------------------------------


def test_an5d_footprint_star(j2d5pt):
    config = BlockingConfig(bT=4, bS=(128,))
    plan = an5d_shared_memory_plan(j2d5pt, config)
    # 2 * nthr * nword words per block.
    assert plan.words_per_block == 2 * 128 * 1
    assert plan.stores_per_cell == 1


def test_an5d_footprint_box_associative(box2d1r):
    config = BlockingConfig(bT=4, bS=(128,))
    plan = an5d_shared_memory_plan(box2d1r, config)
    assert plan.words_per_block == 2 * 128 * 1
    assert plan.stores_per_cell == 1


def test_an5d_footprint_general_stencil(gradient2d):
    # gradient2d is star-shaped, so force the general path by disabling both
    # optimizations.
    config = BlockingConfig(bT=4, bS=(128,), star_opt=False, associative_opt=False)
    plan = an5d_shared_memory_plan(gradient2d, config)
    assert plan.words_per_block == 2 * 128 * (1 + 2 * gradient2d.radius)
    assert plan.stores_per_cell == 1 + 2 * gradient2d.radius


def test_stencilgen_footprint_scales_with_bt(j2d5pt):
    config = BlockingConfig(bT=4, bS=(128,))
    plan = stencilgen_shared_memory_plan(j2d5pt, config)
    assert plan.words_per_block == 4 * 128 * 1
    assert plan.buffers == 4


def test_footprint_ratio_is_bt_over_two(j2d5pt, box2d1r):
    for pattern in (j2d5pt, box2d1r):
        for bT in (2, 4, 8, 10):
            config = BlockingConfig(bT=bT, bS=(256,))
            assert footprint_ratio(pattern, config) == pytest.approx(bT / 2)


def test_double_precision_doubles_words(j2d5pt):
    from repro.stencils.library import load_pattern

    double_pattern = load_pattern("j2d5pt", "double")
    config = BlockingConfig(bT=4, bS=(128,))
    single = an5d_shared_memory_plan(j2d5pt, config)
    double = an5d_shared_memory_plan(double_pattern, config)
    assert double.words_per_block == 2 * single.words_per_block
    assert double.bytes_per_block == 2 * single.bytes_per_block


def test_single_buffer_when_double_buffering_disabled(j2d5pt):
    config = BlockingConfig(bT=4, bS=(128,), double_buffer=False)
    plan = an5d_shared_memory_plan(j2d5pt, config)
    assert plan.buffers == 1


def test_synchronizations_per_subplane(j2d5pt):
    assert synchronizations_per_subplane(BlockingConfig(bT=4, bS=(128,))) == 1
    assert synchronizations_per_subplane(BlockingConfig(bT=4, bS=(128,), double_buffer=False)) == 2


def test_max_blocks_per_sm(j2d5pt, v100):
    config = BlockingConfig(bT=4, bS=(256,))
    plan = an5d_shared_memory_plan(j2d5pt, config)
    assert plan.max_blocks_per_sm(v100.shared_memory_per_sm_bytes) == (
        v100.shared_memory_per_sm_bytes // plan.bytes_per_block
    )
    assert plan.fits(v100.shared_memory_per_sm_bytes)
