"""Tests for the C-subset parser."""

import pytest

from repro.frontend import c_ast
from repro.frontend.cparser import ParseError, parse_program

SIMPLE_LOOP = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S1; i++)
    A[(t+1)%2][i] = 0.5f * A[t%2][i-1] + 0.5f * A[t%2][i+1];
"""


def test_parse_simple_nest_structure():
    program = parse_program(SIMPLE_LOOP)
    assert len(program.loops) == 1
    nest = c_ast.nest_loops(program.loops[0])
    assert [loop.var for loop in nest] == ["t", "i"]


def test_loop_bounds_and_inclusivity():
    program = parse_program(SIMPLE_LOOP)
    time_loop, space_loop = c_ast.nest_loops(program.loops[0])
    assert not time_loop.inclusive
    assert space_loop.inclusive
    assert isinstance(space_loop.lower, c_ast.NumberLiteral)


def test_innermost_body_is_single_assignment():
    program = parse_program(SIMPLE_LOOP)
    body = c_ast.innermost_body(program.loops[0])
    assert len(body) == 1
    assert isinstance(body[0], c_ast.Assignment)


def test_assignment_target_is_array_access():
    program = parse_program(SIMPLE_LOOP)
    assignment = c_ast.innermost_body(program.loops[0])[0]
    assert assignment.target.array == "A"
    assert len(assignment.target.indices) == 2


def test_braced_loop_bodies():
    source = """
    for (t = 0; t < T; t++) {
      for (i = 1; i <= N; i++) {
        A[(t+1)%2][i] = A[t%2][i];
      }
    }
    """
    program = parse_program(source)
    assert c_ast.loop_nest_depth(program.loops[0]) == 2


def test_operator_precedence():
    source = "for (t = 0; t < T; t++) for (i = 1; i <= N; i++) A[(t+1)%2][i] = 1.0f + 2.0f * A[t%2][i];"
    assignment = c_ast.innermost_body(parse_program(source).loops[0])[0]
    assert isinstance(assignment.value, c_ast.BinaryExpr)
    assert assignment.value.op == "+"
    assert isinstance(assignment.value.rhs, c_ast.BinaryExpr)
    assert assignment.value.rhs.op == "*"


def test_parenthesised_expression():
    source = "for (t = 0; t < T; t++) for (i = 1; i <= N; i++) A[(t+1)%2][i] = (1.0f + 2.0f) * A[t%2][i];"
    assignment = c_ast.innermost_body(parse_program(source).loops[0])[0]
    assert assignment.value.op == "*"


def test_unary_minus_and_plus():
    source = "for (t = 0; t < T; t++) for (i = 1; i <= N; i++) A[(t+1)%2][i] = -A[t%2][i] + +2.0f;"
    assignment = c_ast.innermost_body(parse_program(source).loops[0])[0]
    assert isinstance(assignment.value.lhs, c_ast.UnaryExpr)
    assert isinstance(assignment.value.rhs, c_ast.NumberLiteral)


def test_call_expression_parsing():
    source = "for (t = 0; t < T; t++) for (i = 1; i <= N; i++) A[(t+1)%2][i] = sqrtf(A[t%2][i]);"
    assignment = c_ast.innermost_body(parse_program(source).loops[0])[0]
    assert isinstance(assignment.value, c_ast.CallExpr)
    assert assignment.value.name == "sqrtf"


def test_declarations_are_tolerated():
    source = "float alpha = 0.5f;"
    program = parse_program(source)
    assert isinstance(program.statements[0], c_ast.Declaration)


def test_plusplus_prefix_step_supported():
    source = "for (t = 0; t < T; ++t) for (i = 1; i <= N; i++) A[(t+1)%2][i] = A[t%2][i];"
    assert len(parse_program(source).loops) == 1


def test_pluseq_one_step_supported():
    source = "for (t = 0; t < T; t += 1) for (i = 1; i <= N; i++) A[(t+1)%2][i] = A[t%2][i];"
    assert len(parse_program(source).loops) == 1


def test_non_unit_stride_rejected():
    source = "for (t = 0; t < T; t += 2) for (i = 1; i <= N; i++) A[(t+1)%2][i] = A[t%2][i];"
    with pytest.raises(ParseError):
        parse_program(source)


def test_descending_loop_rejected():
    source = "for (t = T; t > 0; t--) A[(t+1)%2][1] = A[t%2][1];"
    with pytest.raises(ParseError):
        parse_program(source)


def test_condition_on_wrong_variable_rejected():
    source = "for (t = 0; x < T; t++) A[(t+1)%2][1] = A[t%2][1];"
    with pytest.raises(ParseError):
        parse_program(source)


def test_assignment_to_scalar_rejected():
    with pytest.raises(ParseError):
        parse_program("x = 1.0f;")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_program("for (t = 0; t < T; t++) { A[(t+1)%2][1] = A[t%2][1];")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_program("for (t = 0; t < T; t++) A[(t+1)%2][1] = A[t%2][1]")


def test_error_message_contains_position():
    try:
        parse_program("for (t = 0; t < T; t++) A[(t+1)%2][1] = A[t%2][1]")
    except ParseError as error:
        assert "line" in str(error)
    else:  # pragma: no cover
        pytest.fail("expected a ParseError")
