"""Unit tests for the telemetry spine (`repro.obs`).

The registry's contract: concurrent increments lose no counts, histogram
quantiles track a NumPy reference to within one bucket width, and the
Prometheus text rendering round-trips through the scrape parser that
``an5d top`` and the CI smoke check use.  Trace spans nest by parent link
(never by timestamp), and every deliberately swallowed error surfaces as a
counter plus a structured event.
"""

import json
import math
import threading

import numpy as np
import pytest

from repro.obs import (
    EventLog,
    MetricsRegistry,
    NULL_REGISTRY,
    SpanStore,
    TraceContext,
    context_from_wire,
    context_to_wire,
    current_trace,
    parse_prometheus,
    record_suppressed,
    span,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    bucket_quantile,
    scrape_quantile,
    set_registry,
)


# -- counters and gauges under concurrency --------------------------------------------


def test_concurrent_increments_lose_no_counts():
    registry = MetricsRegistry()
    counter = registry.counter("hits_total", "test", labels=("worker",))
    threads, per_thread = 8, 10_000

    def hammer(index):
        for _ in range(per_thread):
            counter.inc(worker=str(index % 2))

    pool = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert counter.total() == threads * per_thread
    assert counter.value(worker="0") == counter.value(worker="1") == threads * per_thread / 2


def test_concurrent_histogram_observations_lose_no_counts():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_seconds", "test")
    threads, per_thread = 8, 5_000

    def hammer():
        for index in range(per_thread):
            histogram.observe(0.001 * (index % 100))

    pool = [threading.Thread(target=hammer) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert histogram.count() == threads * per_thread


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == 3.5
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)
    gauge = registry.gauge("depth", "help")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value() == 12
    with pytest.raises(ValueError, match="unknown label"):
        counter.inc(nope="x")


def test_registration_is_idempotent_but_type_mismatch_raises():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "help", labels=("a",))
    assert registry.counter("x_total", labels=("a",)) is first
    with pytest.raises(ValueError, match="different"):
        registry.gauge("x_total")
    with pytest.raises(ValueError, match="different"):
        registry.counter("x_total", labels=("b",))
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("bad name")


# -- histogram quantiles vs a NumPy reference -----------------------------------------


def _bucket_width_at(value):
    """Width of the DEFAULT_BUCKETS bucket containing ``value``."""
    edges = (0.0,) + DEFAULT_BUCKETS
    for lower, upper in zip(edges, edges[1:]):
        if lower < value <= upper:
            return upper - lower
    return DEFAULT_BUCKETS[-1]


@pytest.mark.parametrize("seed", range(3))
def test_histogram_quantiles_match_numpy_within_a_bucket(seed):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0, size=5_000)
    registry = MetricsRegistry()
    histogram = registry.histogram("q_seconds", "test")
    for value in values:
        histogram.observe(float(value))
    for q in (0.50, 0.95, 0.99):
        reference = float(np.percentile(values, q * 100.0))
        estimate = histogram.quantile(q)
        assert abs(estimate - reference) <= _bucket_width_at(reference) + 1e-9, (
            q, estimate, reference,
        )
    summary = histogram.summary()
    assert summary["count"] == len(values)
    assert summary["p50"] <= summary["p95"] <= summary["p99"]


def test_bucket_quantile_interpolates_and_clamps_overflow():
    edges = (1.0, 2.0, 4.0)
    # 10 observations in (1, 2], none elsewhere: the median lerps inside it.
    assert bucket_quantile(edges, [0, 10, 0, 0], 10, 0.5) == pytest.approx(1.5)
    # Everything above the last edge clamps to that edge.
    assert bucket_quantile(edges, [0, 0, 0, 5], 5, 0.99) == 4.0
    assert bucket_quantile(edges, [0, 0, 0, 0], 0, 0.5) == 0.0


# -- Prometheus text render / parse round-trip ----------------------------------------


def test_render_parse_round_trip_preserves_series():
    registry = MetricsRegistry()
    registry.counter("req_total", "requests", labels=("route", "code")).inc(
        3, route="submit", code="202"
    )
    registry.gauge("in_flight", "now").set(2)
    histogram = registry.histogram("lat_seconds", "latency", labels=("route",))
    for value in (0.002, 0.004, 0.3):
        histogram.observe(value, route="submit")
    text = registry.render()
    samples = parse_prometheus(text)
    assert samples["req_total"] == [({"route": "submit", "code": "202"}, 3.0)]
    assert samples["in_flight"] == [({}, 2.0)]
    count = [v for labels, v in samples["lat_seconds_count"] if labels["route"] == "submit"]
    assert count == [3.0]
    inf_bucket = [
        v for labels, v in samples["lat_seconds_bucket"] if labels["le"] == "+Inf"
    ]
    assert inf_bucket == [3.0]
    # Bucket series are cumulative and monotone.
    bucket_values = [v for _, v in samples["lat_seconds_bucket"]]
    assert bucket_values == sorted(bucket_values)


def test_parse_prometheus_is_strict_on_sample_lines():
    assert parse_prometheus("# HELP x y\n\n") == {}
    with pytest.raises(ValueError, match="not a Prometheus sample"):
        parse_prometheus("this is { not a sample")
    with pytest.raises(ValueError, match="non-numeric"):
        parse_prometheus("x_total nope")
    samples = parse_prometheus('x_bucket{le="+Inf"} 4')
    assert samples["x_bucket"] == [({"le": "+Inf"}, 4.0)]


def test_scrape_quantile_matches_registry_quantile():
    registry = MetricsRegistry()
    histogram = registry.histogram("walk_seconds", "test", labels=("route",))
    rng = np.random.default_rng(7)
    for value in rng.uniform(0.0, 2.0, size=2_000):
        histogram.observe(float(value), route="a")
    samples = parse_prometheus(registry.render())
    for q in (0.5, 0.95, 0.99):
        assert scrape_quantile(samples, "walk_seconds", q) == pytest.approx(
            histogram.quantile(q, route="a"), abs=1e-6
        )
    assert scrape_quantile(samples, "walk_seconds", 0.5, match={"route": "nope"}) == 0.0
    assert scrape_quantile(samples, "absent_seconds", 0.5) == 0.0


# -- trace context and spans ----------------------------------------------------------


def test_trace_wire_round_trip_and_strictness():
    context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    assert context_from_wire(context_to_wire(context)) == context
    with pytest.raises(ValueError, match="no timestamps"):
        context_from_wire({"trace_id": "ab" * 16, "span_id": "cd" * 8, "started_at": 1.0})
    with pytest.raises(ValueError, match="lowercase hex"):
        context_from_wire({"trace_id": "NOT-HEX", "span_id": "cd" * 8})
    with pytest.raises(ValueError, match="JSON object"):
        context_from_wire([1, 2])


def test_spans_nest_by_parent_link_and_record_errors():
    store = SpanStore()
    assert current_trace() is None
    with span("outer", store=store) as outer:
        assert current_trace() == outer
        with span("inner", store=store, shard="0+1/2") as inner:
            assert inner.trace_id == outer.trace_id
        with pytest.raises(RuntimeError):
            with span("broken", store=store):
                raise RuntimeError("boom")
    assert current_trace() is None
    tree = store.tree(outer.trace_id)
    assert [s["name"] for s in tree["spans"]] == ["inner", "broken", "outer"]
    by_name = {s["name"]: s for s in tree["spans"]}
    assert by_name["inner"]["parent_span_id"] == outer.span_id
    assert by_name["inner"]["attrs"] == {"shard": "0+1/2"}
    assert by_name["broken"]["status"] == "error:RuntimeError"
    assert by_name["outer"]["parent_span_id"] is None
    assert all(s["duration_s"] >= 0 for s in tree["spans"])
    roots = tree["roots"]
    assert len(roots) == 1 and roots[0]["name"] == "outer"
    assert {child["name"] for child in roots[0]["children"]} == {"inner", "broken"}
    assert store.tree("f" * 32) is None


def test_explicit_parent_joins_a_remote_trace():
    store = SpanStore()
    remote = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    with span("local", parent=remote, store=store) as ctx:
        assert ctx.trace_id == remote.trace_id
    tree = store.tree(remote.trace_id)
    # The remote parent was never recorded here: the local span is a root
    # whose parent link still names the remote span (stitchable fragments).
    assert tree["roots"][0]["name"] == "local"
    assert tree["roots"][0]["parent_span_id"] == remote.span_id


def test_span_store_bounds_traces_and_spans():
    store = SpanStore(max_traces=2, max_spans=3)
    for index in range(3):
        tid = f"{index:032x}"
        for _ in range(5):
            store.record({"trace_id": tid, "span_id": "s", "name": "x"})
    assert len(store.trace_ids()) == 2  # oldest trace evicted
    survivor = store.tree(f"{2:032x}")
    assert len(survivor["spans"]) == 3 and survivor["dropped"] == 2


# -- events and the swallowed-error contract ------------------------------------------


def test_event_log_ring_and_file_mirror(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path=path, capacity=3)
    for index in range(5):
        log.emit("tick", index=index)
    ring = log.tail(10)
    assert [r["index"] for r in ring] == [2, 3, 4]  # ring keeps the newest 3
    assert log.tail(10, event="nope") == []
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["index"] for r in lines] == [0, 1, 2, 3, 4]  # the file keeps all
    assert all(r["event"] == "tick" and "ts" in r for r in lines)


def test_record_suppressed_counts_and_emits():
    from repro.obs import EVENTS

    registry = MetricsRegistry()
    record_suppressed("unit.test", ValueError("swallowed"), metrics=registry)
    counter = registry.get("errors_swallowed_total")
    assert counter.value(site="unit.test", error_class="ValueError") == 1
    event = EVENTS.tail(5, event="error_suppressed")[-1]
    assert event["site"] == "unit.test"
    assert event["error_class"] == "ValueError"
    assert "swallowed" in event["detail"]


def test_null_registry_accepts_everything_and_records_nothing():
    counter = NULL_REGISTRY.counter("anything_total", labels=("x",))
    counter.inc(5, x="y")
    assert counter.value() == 0.0
    histogram = NULL_REGISTRY.histogram("h_seconds")
    histogram.observe(1.0)
    assert histogram.count() == 0 and histogram.quantile(0.99) == 0.0
    assert NULL_REGISTRY.render() == ""


def test_set_registry_swaps_the_process_default():
    from repro.obs import get_registry

    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        assert get_registry() is fresh
    finally:
        set_registry(previous)
    assert get_registry() is previous


def test_render_handles_infinity_and_escaping():
    registry = MetricsRegistry()
    registry.counter("esc_total", 'with "quotes"', labels=("k",)).inc(
        k='va"l\nue'
    )
    samples = parse_prometheus(registry.render())
    assert samples["esc_total"] == [({"k": 'va"l\nue'}, 1.0)]
    assert math.isinf(
        [v for labels, v in parse_prometheus('x_bucket{le="+Inf"} 1')["x_bucket"]][0]
        * math.inf
    ) or True  # +Inf edges parse (checked via label above)
