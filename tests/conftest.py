"""Shared fixtures for the AN5D reproduction test-suite."""

from __future__ import annotations

import pytest

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.model.gpu_specs import get_gpu
from repro.stencils.library import load_pattern


@pytest.fixture(scope="session")
def j2d5pt():
    """The paper's running example (Fig. 4), single precision."""
    return load_pattern("j2d5pt", "float")


@pytest.fixture(scope="session")
def j2d9pt():
    """Second-order 2D star stencil."""
    return load_pattern("j2d9pt", "float")


@pytest.fixture(scope="session")
def box2d1r():
    """First-order 2D box stencil."""
    return load_pattern("box2d1r", "float")


@pytest.fixture(scope="session")
def star3d1r():
    """First-order 3D star stencil."""
    return load_pattern("star3d1r", "float")


@pytest.fixture(scope="session")
def j3d27pt():
    """3D 27-point box stencil."""
    return load_pattern("j3d27pt", "float")


@pytest.fixture(scope="session")
def gradient2d():
    """Non-associative stencil with sqrt and division."""
    return load_pattern("gradient2d", "float")


@pytest.fixture(scope="session")
def v100():
    return get_gpu("V100")


@pytest.fixture(scope="session")
def p100():
    return get_gpu("P100")


@pytest.fixture
def small_2d_grid():
    """A grid small enough for functional execution in tests."""
    return GridSpec((72, 72), 9)


@pytest.fixture
def small_3d_grid():
    return GridSpec((20, 28, 28), 5)


@pytest.fixture
def config_2d():
    return BlockingConfig(bT=3, bS=(32,), hS=None)


@pytest.fixture
def config_3d():
    return BlockingConfig(bT=2, bS=(16, 16), hS=None)


@pytest.fixture(scope="session")
def eval_2d_grid():
    """The paper's 2D evaluation grid (16,384^2, 1,000 steps)."""
    return GridSpec((16384, 16384), 1000)


@pytest.fixture(scope="session")
def eval_3d_grid():
    """The paper's 3D evaluation grid (512^3, 1,000 steps)."""
    return GridSpec((512, 512, 512), 1000)
