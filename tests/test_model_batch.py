"""Equivalence tests for the batched model engine (`repro.model.batch`).

The batch engine's contract is bit-for-bit agreement with the scalar model:
identical pruning masks, identical ``PerformancePrediction`` objects and
identical ``SimulatedMeasurement`` objects for every configuration of the
full default search space, across patterns, dtypes and both GPUs.
"""

import numpy as np
import pytest

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.model.batch import (
    BatchModelEngine,
    BatchUnsupportedError,
    ConfigBatch,
    prune_mask,
    register_mask,
    resolve_engine,
    supports_pattern,
    validity_mask,
)
from repro.model.gpu_specs import get_gpu
from repro.model.registers import register_pressure_ok
from repro.model.roofline import predict_performance
from repro.sim.timing import TimingSimulator
from repro.stencils.library import load_pattern
from repro.tuning.autotuner import AutoTuner
from repro.tuning.exhaustive import exhaustive_search
from repro.tuning.pruning import prune_configurations, pruning_statistics
from repro.tuning.search_space import REGISTER_LIMITS, SearchSpace, default_search_space

#: >= 3 patterns (star, box with sqrt/division, 3-D box) x 2 GPUs, spanning
#: both dimensionalities and both dtypes.
EQUIVALENCE_CASES = [
    ("j2d5pt", "float", "V100", GridSpec((4096, 4096), 500)),
    ("j2d5pt", "double", "P100", GridSpec((4096, 4096), 500)),
    ("gradient2d", "float", "P100", GridSpec((4096, 4096), 500)),
    ("j3d27pt", "double", "V100", GridSpec((256, 256, 256), 500)),
    ("star3d2r", "float", "V100", GridSpec((256, 256, 256), 500)),
]

CASE_IDS = [f"{name}-{dtype}-{gpu}" for name, dtype, gpu, _ in EQUIVALENCE_CASES]


@pytest.fixture(params=EQUIVALENCE_CASES, ids=CASE_IDS)
def case(request):
    name, dtype, gpu_name, grid = request.param
    pattern = load_pattern(name, dtype)
    return pattern, grid, get_gpu(gpu_name)


# -- layout ---------------------------------------------------------------------------


def test_from_space_matches_enumeration_order(case):
    pattern, _, _ = case
    space = default_search_space(pattern)
    batch = ConfigBatch.from_space(space)
    assert batch.size == space.size()
    assert list(batch.configs()) == list(space.configurations())


def test_from_space_with_register_limits(case):
    pattern, _, _ = case
    space = default_search_space(pattern)
    batch = ConfigBatch.from_space(space, include_register_limits=True)
    assert list(batch.configs()) == list(space.configurations(include_register_limits=True))


def test_register_limit_cross_product_is_config_major():
    base = ConfigBatch.from_configs(
        [BlockingConfig(bT=2, bS=(128,)), BlockingConfig(bT=4, bS=(256,), hS=512)]
    )
    sweep = base.with_register_limits(REGISTER_LIMITS)
    expected = [
        config.with_register_limit(limit)
        for config in base.configs()
        for limit in REGISTER_LIMITS
    ]
    assert list(sweep.configs()) == expected


def test_from_configs_rejects_unbatchable_shapes():
    with pytest.raises(BatchUnsupportedError):
        ConfigBatch.from_configs([])
    with pytest.raises(BatchUnsupportedError):
        ConfigBatch.from_configs(
            [BlockingConfig(bT=1, bS=(128,)), BlockingConfig(bT=1, bS=(16, 16))]
        )
    with pytest.raises(BatchUnsupportedError):
        ConfigBatch.from_configs([BlockingConfig(bT=1, bS=(128,), double_buffer=False)])


# -- pruning masks --------------------------------------------------------------------


def test_pruning_masks_match_scalar_predicates(case):
    pattern, _, gpu = case
    space = default_search_space(pattern)
    configs = list(space.configurations())
    batch = ConfigBatch.from_space(space)
    valid = validity_mask(pattern, batch)
    registers = register_mask(pattern, batch, gpu)
    for config, v, r in zip(configs, valid, registers):
        assert bool(v) == config.is_valid(pattern), config.describe()
        assert bool(r) == register_pressure_ok(pattern, config, gpu), config.describe()
    survivors = prune_configurations(pattern, configs, gpu)
    assert survivors == list(batch.select(prune_mask(pattern, batch, gpu)).configs())
    stats = pruning_statistics(pattern, configs, gpu)
    assert stats["kept"] == len(survivors)
    assert stats["invalid"] + stats["register_pruned"] + stats["kept"] == stats["total"]


# -- model equivalence ----------------------------------------------------------------


def test_predictions_bit_identical_across_full_space(case):
    pattern, grid, gpu = case
    space = default_search_space(pattern)
    base = ConfigBatch.from_space(space)
    survivors = base.select(prune_mask(pattern, base, gpu))
    engine = BatchModelEngine(pattern, grid, gpu)
    predicted = engine.predict(survivors)
    for index, config in enumerate(survivors.configs()):
        scalar = predict_performance(pattern, grid, config, gpu)
        batched = engine.prediction(predicted, index)
        # Dataclass equality covers every field exactly, including the
        # nested traffic totals and thread-work counts.
        assert batched == scalar, config.describe()


def test_simulations_bit_identical_across_full_space(case):
    pattern, grid, gpu = case
    space = default_search_space(pattern)
    base = ConfigBatch.from_space(space)
    survivors = base.select(prune_mask(pattern, base, gpu))
    sweep = survivors.with_register_limits(REGISTER_LIMITS)
    engine = BatchModelEngine(pattern, grid, gpu)
    measured = engine.simulate(sweep)
    simulator = TimingSimulator(gpu)
    for index, config in enumerate(sweep.configs()):
        scalar = simulator.simulate(pattern, grid, config)
        batched = engine.measurement(measured, index)
        assert batched == scalar, config.describe()


def test_exhaustive_engines_agree_exactly(case):
    pattern, grid, gpu = case
    batched = exhaustive_search(pattern, grid, gpu, engine="batch")
    scalar = exhaustive_search(pattern, grid, gpu, engine="scalar")
    assert batched.best_config == scalar.best_config
    assert batched.best_gflops == scalar.best_gflops  # exact float equality
    assert batched.evaluated == scalar.evaluated


def test_rank_engines_agree_exactly(case):
    pattern, grid, gpu = case
    batched = AutoTuner(gpu, engine="batch").rank(pattern, grid)
    scalar = AutoTuner(gpu, engine="scalar").rank(pattern, grid)
    assert [c.config for c in batched] == [c.config for c in scalar]
    assert [c.predicted for c in batched] == [c.predicted for c in scalar]


def test_tune_engines_agree_exactly(case):
    pattern, grid, gpu = case
    batched = AutoTuner(gpu, engine="batch").tune(pattern, grid)
    scalar = AutoTuner(gpu, engine="scalar").tune(pattern, grid)
    assert batched.best_config == scalar.best_config
    assert batched.best.measured_gflops == scalar.best.measured_gflops
    assert batched.best.predicted == scalar.best.predicted
    assert batched.pruned_to == scalar.pruned_to


# -- unlaunchable and empty-space edges -----------------------------------------------


def test_unlaunchable_configuration_matches_scalar():
    # bT=16 with bS=1024 exceeds the register file per SM after capping:
    # such rows must mirror TimingSimulator._unlaunchable exactly.
    pattern = load_pattern("j2d5pt", "double")
    grid = GridSpec((4096, 4096), 100)
    gpu = get_gpu("V100")
    config = BlockingConfig(bT=16, bS=(1024,), register_limit=96)
    batch = ConfigBatch.from_configs([config])
    engine = BatchModelEngine(pattern, grid, gpu)
    batched = engine.measurement(engine.simulate(batch), 0)
    scalar = TimingSimulator(gpu).simulate(pattern, grid, config)
    assert scalar.bottleneck == "unlaunchable" and scalar.gflops == 0.0
    assert batched == scalar


def test_batch_exhaustive_rejects_empty_space(v100):
    pattern = load_pattern("j2d5pt")
    space = SearchSpace(time_blocks=(), spatial_blocks=((128,),), stream_blocks=(256,))
    with pytest.raises(ValueError, match="no valid configuration"):
        exhaustive_search(pattern, GridSpec((4096, 4096), 100), v100, space, engine="batch")


# -- engine resolution ----------------------------------------------------------------


def test_resolve_engine_rules():
    pattern_2d = load_pattern("j2d5pt")
    assert supports_pattern(pattern_2d)
    assert resolve_engine("auto", pattern_2d) == "batch"
    assert resolve_engine("scalar", pattern_2d) == "scalar"
    with pytest.raises(ValueError):
        resolve_engine("turbo", pattern_2d)


def test_one_dimensional_pattern_falls_back_to_scalar():
    from repro.ir.expr import BinOp, GridRead
    from repro.ir.stencil import StencilPattern

    expr = BinOp("+", GridRead("A", (-1,)), GridRead("A", (1,)))
    pattern = StencilPattern(name="j1d", ndim=1, expr=expr)
    assert not supports_pattern(pattern)
    assert resolve_engine("auto", pattern) == "scalar"
    with pytest.raises(ValueError, match="batch engine"):
        resolve_engine("batch", pattern)


# -- campaign predict batching --------------------------------------------------------


def test_campaign_predict_batch_payloads_match_scalar_runner():
    from repro.campaign.jobs import JobSpec, run_job, run_predict_jobs

    specs = [
        JobSpec("predict", "j2d5pt", "V100", "float", (512, 512), 50,
                (("bT", bT), ("bS", (256,))))
        for bT in (1, 2, 4, 8)
    ]
    payloads = run_predict_jobs(specs)
    assert payloads == [run_job(spec) for spec in specs]


def test_campaign_predict_batch_rejects_mixed_groups():
    from repro.campaign.jobs import JobSpec, run_predict_jobs

    mixed = [
        JobSpec("predict", "j2d5pt", "V100", "float", (512, 512), 50),
        JobSpec("predict", "j2d5pt", "P100", "float", (512, 512), 50),
    ]
    with pytest.raises(ValueError):
        run_predict_jobs(mixed)


# -- randomized equivalence sweep -----------------------------------------------------
#
# The named cases above pin the two default search spaces; this sweep samples
# hundreds of (pattern, grid, GPU, dtype) spaces well outside them — small
# spatial blocks, huge stream blocks, non-square grids, every Table 3 stencil
# — and holds the batch engine to the same bit-for-bit contract on each.
# Everything derives from one seed, so a failure reproduces exactly.

RANDOM_SEED = 20260726
RANDOM_SPACE_COUNT = 200

_AXES = {
    2: dict(
        time=tuple(range(1, 17)),
        spatial=((32,), (64,), (128,), (256,), (512,), (1024,)),
        stream=(None, 128, 256, 512, 1024, 2048),
        interiors=((512, 512), (1024, 1024), (2048, 1024), (4096, 4096), (16384, 512)),
    ),
    3: dict(
        time=tuple(range(1, 9)),
        spatial=((8, 8), (16, 16), (16, 32), (32, 16), (32, 32), (64, 16), (8, 64)),
        stream=(None, 64, 128, 256),
        interiors=((48, 48, 48), (64, 64, 64), (128, 96, 64), (256, 256, 256)),
    ),
}
_TIME_STEPS = (50, 100, 500, 1000)


def _pick(rng, values, count):
    """Sample ``count`` distinct entries, preserving declaration order."""
    chosen = sorted(rng.choice(len(values), size=count, replace=False).tolist())
    return tuple(values[i] for i in chosen)


def _random_case(rng, names, gpus):
    name = names[int(rng.integers(len(names)))]
    dtype = ("float", "double")[int(rng.integers(2))]
    pattern = load_pattern(name, dtype)
    axes = _AXES[pattern.ndim]
    space = SearchSpace(
        time_blocks=_pick(rng, axes["time"], int(rng.integers(1, 4))),
        spatial_blocks=_pick(rng, axes["spatial"], int(rng.integers(1, 3))),
        stream_blocks=_pick(rng, axes["stream"], int(rng.integers(1, 3))),
        register_limits=_pick(rng, REGISTER_LIMITS, int(rng.integers(1, 3))),
    )
    interiors = axes["interiors"]
    grid = GridSpec(
        interiors[int(rng.integers(len(interiors)))],
        _TIME_STEPS[int(rng.integers(len(_TIME_STEPS)))],
    )
    return pattern, grid, gpus[int(rng.integers(len(gpus)))], space


def test_randomized_spaces_match_scalar_oracle():
    from repro.stencils.library import BENCHMARKS

    rng = np.random.default_rng(RANDOM_SEED)
    names = [name for name, benchmark in BENCHMARKS.items() if benchmark.ndim in (2, 3)]
    gpus = (get_gpu("V100"), get_gpu("P100"))
    simulators = {gpu: TimingSimulator(gpu) for gpu in gpus}
    compared = 0
    for case_index in range(RANDOM_SPACE_COUNT):
        pattern, grid, gpu, space = _random_case(rng, names, gpus)
        label = f"case {case_index}: {pattern.name} {grid.interior} {space}"
        configs = list(space.configurations())
        batch = ConfigBatch.from_space(space)
        assert list(batch.configs()) == configs, label

        # Pruning decisions agree configuration by configuration.
        survivors_scalar = prune_configurations(pattern, configs, gpu)
        survivors = batch.select(prune_mask(pattern, batch, gpu))
        assert list(survivors.configs()) == survivors_scalar, label
        if not survivors_scalar:
            continue

        engine = BatchModelEngine(pattern, grid, gpu)
        predicted = engine.predict(survivors)
        for index, config in enumerate(survivors.configs()):
            scalar = predict_performance(pattern, grid, config, gpu)
            assert engine.prediction(predicted, index) == scalar, (
                f"{label}: {config.describe()}"
            )

        sweep = survivors.with_register_limits(space.register_limits)
        measured = engine.simulate(sweep)
        for index, config in enumerate(sweep.configs()):
            scalar = simulators[gpu].simulate(pattern, grid, config)
            assert engine.measurement(measured, index) == scalar, (
                f"{label}: {config.describe()}"
            )
            compared += 1
    # The sweep must have really exercised the engines, not pruned everything.
    assert compared >= RANDOM_SPACE_COUNT
