"""Tests for the high-level API and the command-line interface."""

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.stencils.library import get_benchmark


# -- api.compile_stencil ------------------------------------------------------


def test_compile_benchmark_by_name():
    compiled = api.compile_stencil("j2d5pt", bT=4, bS=(64,))
    assert compiled.pattern.name == "j2d5pt"
    assert "__global__" in compiled.kernel_source
    assert "an5d_host_j2d5pt" in compiled.host_source


def test_compile_raw_source():
    source = get_benchmark("j2d5pt").source
    compiled = api.compile_stencil(source, name="heat", bT=2, bS=(32,))
    assert compiled.pattern.name == "heat"
    assert "an5d_kernel_heat" in compiled.kernel_source


def test_compile_existing_pattern(j2d5pt):
    compiled = api.compile_stencil(j2d5pt, bT=2, bS=(32,))
    assert compiled.config.bT == 2


def test_compile_with_explicit_config(j2d5pt):
    config = BlockingConfig(bT=6, bS=(128,), hS=256, register_limit=64)
    compiled = api.compile_stencil(j2d5pt, config=config)
    assert compiled.config is config
    assert "__launch_bounds__" in compiled.kernel_source


def test_parse_returns_detected_stencil():
    detected = api.parse(get_benchmark("j2d5pt").source, name="x")
    assert detected.pattern.radius == 1


# -- api predict / simulate / tune --------------------------------------------------


def test_predict_and_simulate_consistency():
    config = BlockingConfig(bT=8, bS=(256,), hS=512)
    predicted = api.predict("j2d5pt", config, gpu="V100", grid=(4096, 4096), time_steps=100)
    simulated = api.simulate("j2d5pt", config, gpu="V100", grid=(4096, 4096), time_steps=100)
    assert simulated.gflops < predicted.gflops


def test_tune_small_grid():
    result = api.tune("j2d5pt", gpu="V100", grid=(2048, 2048), time_steps=100)
    assert result.best.measured_gflops > 0
    assert result.gpu_name.startswith("Tesla V100")


def test_sconf_configuration_api():
    assert api.sconf("j2d5pt").bT == 4
    assert api.sconf("star3d1r").bS == (32, 32)


def test_execution_summary_fields():
    summary = api.execution_summary("j2d5pt", BlockingConfig(bT=4, bS=(64,)), grid=(512, 512))
    assert summary["nthr"] == 64
    assert summary["ntb"] > 0


# -- api run / reference / verify -----------------------------------------------------


def test_api_run_matches_reference():
    config = BlockingConfig(bT=3, bS=(32,))
    grid = (64, 64)
    blocked = api.run("j2d5pt", config, grid, time_steps=6, seed=7)
    ref = api.reference("j2d5pt", grid, time_steps=6, seed=7)
    assert np.allclose(blocked, ref, rtol=1e-4, atol=1e-5)


def test_api_verify_2d_and_3d():
    assert api.verify("j2d5pt", bT=4, bS=(32,), time_steps=8).matches
    assert api.verify("star3d1r", bT=2, bS=(16, 16), time_steps=4).matches


def test_api_baseline_dispatch():
    for name in ("loop", "hybrid", "stencilgen", "Loop Tiling", "Hybrid-Tiling"):
        result = api.baseline(name, "j2d5pt", gpu="V100", grid=(2048, 2048), time_steps=50)
        assert result.gflops > 0
    with pytest.raises(ValueError):
        api.baseline("overtile", "j2d5pt")


def test_api_grid_resolution_defaults():
    # Benchmark names pick up the paper's default grids.
    prediction = api.predict("j2d5pt", BlockingConfig(bT=4, bS=(256,)))
    assert prediction.traffic.useful_flops == pytest.approx(16384 * 16384 * 1000 * 10, rel=1e-6)


def test_api_accepts_gridspec_instances():
    grid = GridSpec((1024, 1024), 10)
    measurement = api.simulate("j2d5pt", BlockingConfig(bT=2, bS=(128,)), grid=grid)
    assert measurement.time_s > 0


# -- CLI ----------------------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "j2d5pt" in output and "box3d4r" in output


def test_cli_compile_benchmark(capsys):
    assert main(["compile", "j2d5pt", "--bT", "2", "--bS", "64"]) == 0
    output = capsys.readouterr().out
    assert "__global__" in output and "an5d_kernel_j2d5pt" in output


def test_cli_compile_to_file(tmp_path, capsys):
    target = tmp_path / "kernel.cu"
    assert main(["compile", "j2d5pt", "--bT", "2", "--bS", "64", "-o", str(target)]) == 0
    assert target.exists()
    assert "an5d_kernel_j2d5pt" in target.read_text()


def test_cli_compile_source_file(tmp_path, capsys):
    source_file = tmp_path / "heat.c"
    source_file.write_text(get_benchmark("j2d5pt").source)
    assert main(["compile", str(source_file), "--bT", "2", "--bS", "64"]) == 0
    assert "an5d_kernel_heat" in capsys.readouterr().out


def test_cli_compile_missing_input(capsys):
    assert main(["compile", "does-not-exist"]) == 2


def test_cli_verify(capsys):
    assert main(["verify", "j2d5pt", "--bT", "3", "--bS", "32", "--time-steps", "6"]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_verify_3d(capsys):
    assert main(["verify", "star3d1r", "--bT", "2", "--bS", "16x16", "--time-steps", "4"]) == 0


def test_cli_predict(capsys):
    assert main(["predict", "j2d5pt", "--bT", "8", "--bS", "256", "--hS", "512"]) == 0
    output = capsys.readouterr().out
    assert "model:" in output and "simulated:" in output


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
