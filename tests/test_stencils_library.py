"""Tests for the benchmark library (Table 3) and the reference executor."""

import math
import re

import numpy as np
import pytest

from repro.stencils.library import (
    BENCHMARKS,
    DEFAULT_2D_GRID,
    DEFAULT_3D_GRID,
    FIGURE6_NAMES,
    benchmark_names,
    figure6_benchmarks,
    get_benchmark,
    load_pattern,
)
from repro.stencils.generators import box_stencil, star_stencil
from repro.stencils.reference import (
    ReferenceExecutor,
    allclose_for_dtype,
    make_initial_grid,
    max_relative_error,
    run_reference,
)
from repro.ir.stencil import GridSpec


# -- library ---------------------------------------------------------------------


def test_table3_has_21_benchmarks():
    assert len(BENCHMARKS) == 21


def test_benchmark_names_cover_synthetic_and_named():
    names = benchmark_names()
    for expected in ("star2d1r", "box2d4r", "star3d4r", "box3d1r", "j2d5pt", "gradient2d", "j3d27pt"):
        assert expected in names


def test_get_benchmark_unknown_name():
    with pytest.raises(KeyError):
        get_benchmark("star5d1r")


def test_figure6_benchmark_selection():
    assert len(FIGURE6_NAMES) == 7
    assert [b.name for b in figure6_benchmarks()] == list(FIGURE6_NAMES)


def test_benchmark_patterns_parse_and_match_metadata():
    for name, benchmark in BENCHMARKS.items():
        pattern = load_pattern(name)
        assert pattern.ndim == benchmark.ndim, name
        assert pattern.radius == benchmark.radius, name


def test_default_grids_match_section61():
    assert get_benchmark("j2d5pt").default_grid().interior == DEFAULT_2D_GRID == (16384, 16384)
    assert get_benchmark("star3d1r").default_grid().interior == DEFAULT_3D_GRID == (512, 512, 512)
    assert get_benchmark("j2d5pt").default_grid().time_steps == 1000


def test_load_pattern_caches_instances():
    assert load_pattern("j2d5pt") is load_pattern("j2d5pt")
    assert load_pattern("j2d5pt") is not load_pattern("j2d5pt", "double")


def test_synthetic_star_shapes():
    for radius in range(1, 5):
        assert load_pattern(f"star2d{radius}r").is_star
        assert load_pattern(f"box3d{radius}r").is_box if radius <= 2 else True


def test_benchmark_descriptions_are_informative():
    for benchmark in BENCHMARKS.values():
        assert len(benchmark.description) > 10


# -- generators ----------------------------------------------------------------------


def test_generator_and_source_produce_same_offsets():
    from repro.frontend.stencil_detect import parse_stencil
    from repro.stencils.generators import star_stencil_source

    direct = star_stencil(2, 3)
    parsed = parse_stencil(star_stencil_source(2, 3)).pattern
    assert direct.offsets == parsed.offsets


def test_generator_coefficients_are_normalised():
    from repro.ir.expr import BinOp, Const, walk

    pattern = box_stencil(2, 1)
    coefficients = [
        node.lhs.value
        for node in walk(pattern.expr)
        if isinstance(node, BinOp) and node.op == "*" and isinstance(node.lhs, Const)
    ]
    assert len(coefficients) == 9
    assert sum(abs(c) for c in coefficients) == pytest.approx(1.0, abs=1e-6)


# -- coefficient regression (zero/drifting coefficients) -------------------------


@pytest.mark.parametrize("radius", range(1, 9))
@pytest.mark.parametrize("ndim", (2, 3))
@pytest.mark.parametrize("family", ("star", "box"))
def test_every_family_has_positive_unit_sum_coefficients(family, ndim, radius):
    """Regression: large offsets used to drive raw weights to zero or below,
    and per-term rounding let the coefficient sum drift from 1."""
    from repro.stencils.generators import (
        box_offsets,
        normalised_terms,
        star_offsets,
    )

    offsets = (star_offsets if family == "star" else box_offsets)(ndim, radius)
    terms = normalised_terms(offsets)
    assert len(terms) == len(offsets)
    coefficients = [coefficient for _, coefficient in terms]
    assert all(coefficient > 0 for coefficient in coefficients), f"{family}{ndim}d{radius}r"
    assert abs(math.fsum(coefficients) - 1.0) < 1e-9, f"{family}{ndim}d{radius}r"


_SOURCE_COEFFICIENT = re.compile(
    r"([0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?)f? \* "
)


def _family_sources():
    """One generated C source per generator family (plus fuzz samples)."""
    from repro.stencils.generators import (
        anisotropic_star_stencil_source,
        box_stencil_source,
        fdtd_stencil_source,
        fuzz_stencil,
        star_stencil_source,
        variable_star_stencil_source,
    )

    sources = {}
    for ndim in (2, 3):
        for radius in range(1, 9):
            sources[f"star{ndim}d{radius}r"] = star_stencil_source(ndim, radius)
            sources[f"box{ndim}d{radius}r"] = box_stencil_source(ndim, radius)
    sources["astar2d1x3r"] = anisotropic_star_stencil_source((1, 3))
    sources["astar3d2x1x1r"] = anisotropic_star_stencil_source((2, 1, 1))
    sources["vstar2d2r-s7"] = variable_star_stencil_source(2, 2, 7)
    sources["vstar3d2r-s11"] = variable_star_stencil_source(3, 2, 11, dtype="double")
    sources["fdtd2d"] = fdtd_stencil_source(2)
    sources["fdtd3d"] = fdtd_stencil_source(3, dtype="double")
    for index in range(6):
        stencil = fuzz_stencil(3, index)
        sources[stencil.name] = stencil.source
    return sources


@pytest.mark.parametrize("name,source", sorted(_family_sources().items()))
def test_generated_source_has_no_zero_coefficients(name, source):
    """Regression: every family's emitted C must be free of dead
    ``0.0f * A[...]`` terms (zero coefficients silently drop a read)."""
    values = [float(text) for text in _SOURCE_COEFFICIENT.findall(source)]
    assert values, name
    assert all(value != 0.0 for value in values), name


# -- scenario registry and dynamic names -----------------------------------------


def test_scenario_benchmarks_resolve():
    from repro.stencils.library import scenario_names

    names = scenario_names()
    assert "fdtd2d" in names and "fdtd3d" in names
    for name in names:
        benchmark = get_benchmark(name)
        pattern = load_pattern(name)
        assert pattern.ndim == benchmark.ndim, name
        assert pattern.radius == benchmark.radius, name


def test_dynamic_names_resolve_beyond_table3():
    for name in ("star2d6r", "box2d8r", "astar2d1x2r", "vstar2d1r-s3", "fuzz-7-0"):
        pattern = load_pattern(name)
        assert pattern.name == name
        assert pattern.ndim in (2, 3)


def test_box3d_beyond_radius4_is_rejected():
    with pytest.raises(KeyError):
        get_benchmark("box3d7r")


def test_table3_registry_is_not_polluted_by_dynamic_names():
    load_pattern("star2d6r")
    assert "star2d6r" not in BENCHMARKS
    assert len(BENCHMARKS) == 21


# -- reference executor -----------------------------------------------------------------


def test_initial_grid_shape_and_dtype(j2d5pt):
    grid = GridSpec((32, 48), 4)
    initial = make_initial_grid(j2d5pt, grid)
    assert initial.shape == (34, 50)
    assert initial.dtype == np.float32


def test_reference_step_updates_interior_only(j2d5pt):
    grid = GridSpec((16, 16), 1)
    initial = make_initial_grid(j2d5pt, grid, seed=1)
    stepped = ReferenceExecutor(j2d5pt).step(initial)
    assert np.array_equal(stepped[0, :], initial[0, :])
    assert not np.allclose(stepped[1:-1, 1:-1], initial[1:-1, 1:-1])


def test_reference_matches_manual_jacobi():
    pattern = load_pattern("j2d5pt", "double")
    grid = GridSpec((8, 8), 1)
    initial = make_initial_grid(pattern, grid, seed=2).astype(np.float64)
    result = run_reference(pattern, grid, initial=initial.copy())
    # Manual evaluation of the j2d5pt formula at one interior point.
    i, j = 4, 5
    expected = (
        5.1 * initial[i - 1, j]
        + 12.1 * initial[i, j - 1]
        + 15.0 * initial[i, j]
        + 12.2 * initial[i, j + 1]
        + 5.2 * initial[i + 1, j]
    ) / 118
    assert result[i, j] == pytest.approx(expected, rel=1e-12)


def test_reference_3d_runs(star3d1r):
    grid = GridSpec((10, 12, 12), 3)
    result = run_reference(star3d1r, grid)
    assert result.shape == grid.padded(1)


def test_reference_gradient2d_is_finite(gradient2d):
    grid = GridSpec((24, 24), 5)
    result = run_reference(gradient2d, grid)
    assert np.isfinite(result).all()


def test_reference_zero_steps_is_identity(j2d5pt):
    grid = GridSpec((16, 16), 0)
    initial = make_initial_grid(j2d5pt, grid, seed=5)
    assert np.array_equal(run_reference(j2d5pt, grid, initial=initial.copy()), initial)


def test_max_relative_error_and_allclose():
    a = np.array([1.0, 2.0, 4.0])
    b = np.array([1.0, 2.0, 4.0 * (1 + 1e-3)])
    assert max_relative_error(a, b) == pytest.approx(1e-3, rel=1e-2)
    assert allclose_for_dtype(a, a, "float")
    assert not allclose_for_dtype(a, b, "double")


def test_max_relative_error_handles_zeros():
    a = np.zeros(4)
    assert max_relative_error(a, a) == 0.0
