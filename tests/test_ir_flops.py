"""Tests for FLOP accounting and ALU efficiency (Table 3 figures)."""

import pytest

from repro.ir.flops import alu_efficiency, count_flops, flops_per_cell, reads_per_cell
from repro.stencils.generators import box_stencil, star_stencil
from repro.stencils.library import get_benchmark, load_pattern


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_star2d_flops_match_table3(radius):
    pattern = star_stencil(2, radius)
    assert flops_per_cell(pattern.expr) == 8 * radius + 1


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_star3d_flops_match_table3(radius):
    pattern = star_stencil(3, radius)
    assert flops_per_cell(pattern.expr) == 12 * radius + 1


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_box2d_flops_match_table3(radius):
    pattern = box_stencil(2, radius)
    assert flops_per_cell(pattern.expr) == 2 * (2 * radius + 1) ** 2 - 1


@pytest.mark.parametrize("radius", [1, 2])
def test_box3d_flops_match_table3(radius):
    pattern = box_stencil(3, radius)
    assert flops_per_cell(pattern.expr) == 2 * (2 * radius + 1) ** 3 - 1


@pytest.mark.parametrize(
    "name", ["j2d5pt", "j2d9pt", "j2d9pt-gol", "j3d27pt"]
)
def test_named_benchmarks_match_paper_flop_counts(name):
    benchmark = get_benchmark(name)
    pattern = load_pattern(name)
    assert flops_per_cell(pattern.expr) == benchmark.paper_flops_per_cell


def test_gradient2d_flops_close_to_paper(gradient2d):
    # The paper counts 19 FLOP/cell; the exact figure depends on how the
    # rsqrt/division fast-math rewrite is attributed, so allow a small margin.
    counted = flops_per_cell(gradient2d.expr)
    assert abs(counted - get_benchmark("gradient2d").paper_flops_per_cell) <= 2


def test_division_counted_as_mul_under_fast_math(j2d5pt):
    mix_fast = count_flops(j2d5pt.expr, fast_math=True)
    mix_slow = count_flops(j2d5pt.expr, fast_math=False)
    assert mix_fast.div == 0
    assert mix_slow.div == 1
    assert mix_slow.total == mix_fast.total


def test_fma_fusion_for_dot_product():
    mix = count_flops(star_stencil(2, 1).expr)
    # 5 products, 4 additions: 4 FMAs plus one leftover multiplication.
    assert mix.fma == 4
    assert mix.mul == 1
    assert mix.add == 0


def test_total_counts_fma_as_two():
    mix = count_flops(star_stencil(2, 1).expr)
    assert mix.total == 2 * mix.fma + mix.mul + mix.add + mix.div + mix.other


def test_instruction_count_counts_fma_once():
    mix = count_flops(star_stencil(2, 1).expr)
    assert mix.instruction_count == mix.fma + mix.mul + mix.add + mix.div + mix.other


def test_alu_efficiency_bounds():
    for pattern in (star_stencil(2, 1), box_stencil(2, 2), load_pattern("gradient2d")):
        eff = alu_efficiency(count_flops(pattern.expr))
        assert 0.5 <= eff <= 1.0


def test_alu_efficiency_perfect_for_pure_fma():
    from repro.ir.flops import FlopCount

    assert alu_efficiency(FlopCount(fma=10)) == 1.0


def test_alu_efficiency_half_for_pure_add():
    from repro.ir.flops import FlopCount

    assert alu_efficiency(FlopCount(add=10)) == 0.5


def test_empty_mix_efficiency_is_one():
    from repro.ir.flops import FlopCount

    assert alu_efficiency(FlopCount()) == 1.0


def test_merged_counts_add_up():
    from repro.ir.flops import FlopCount

    merged = FlopCount(fma=1, mul=2).merged(FlopCount(fma=3, add=4))
    assert merged.fma == 4 and merged.mul == 2 and merged.add == 4


def test_reads_per_cell_matches_point_count():
    assert reads_per_cell(star_stencil(2, 2).expr) == 9
    assert reads_per_cell(box_stencil(2, 1).expr) == 9


def test_gradient_reads_count_duplicates(gradient2d):
    # gradient2d reads the centre cell many times.
    assert reads_per_cell(gradient2d.expr) > len(gradient2d.offsets)
