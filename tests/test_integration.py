"""End-to-end integration tests: C source → CUDA + tuning + verification."""

import numpy as np

from repro import api
from repro.core.config import BlockingConfig
from repro.frontend.stencil_detect import parse_stencil
from repro.ir.stencil import GridSpec
from repro.sim.executor import verify_blocking
from repro.stencils.library import BENCHMARKS, figure6_benchmarks, load_pattern
from repro.tuning.autotuner import AutoTuner


def test_every_benchmark_compiles_to_cuda():
    """All 21 Table-3 stencils go through the full frontend → codegen path."""
    for name, benchmark in BENCHMARKS.items():
        bS = (64,) if benchmark.ndim == 2 else (16, 16)
        bT = 2 if benchmark.radius <= 2 else 1
        compiled = api.compile_stencil(name, bT=bT, bS=bS)
        assert "__global__" in compiled.kernel_source, name
        assert compiled.kernel_source.count("{") == compiled.kernel_source.count("}"), name
        assert "STORE(" in compiled.kernel_source, name


def test_every_2d_benchmark_verifies_functionally():
    """Blocked execution equals the reference for every 2D benchmark."""
    for name, benchmark in BENCHMARKS.items():
        if benchmark.ndim != 2:
            continue
        pattern = load_pattern(name)
        block = 32 + 16 * benchmark.radius
        config = BlockingConfig(bT=2, bS=(block,))
        grid = GridSpec((64, 64), 5)
        assert verify_blocking(pattern, grid, config).matches, name


def test_every_3d_benchmark_verifies_functionally():
    for name, benchmark in BENCHMARKS.items():
        if benchmark.ndim != 3:
            continue
        pattern = load_pattern(name)
        block = 8 + 8 * benchmark.radius
        config = BlockingConfig(bT=1, bS=(block, 16))
        grid = GridSpec((12, 40, 40), 3)
        assert verify_blocking(pattern, grid, config).matches, name


def test_custom_stencil_end_to_end(tmp_path):
    """A user-written heat equation goes from C source to verified CUDA."""
    source = """
    for (t = 0; t < T; t++)
      for (i = 1; i <= N; i++)
        for (j = 1; j <= M; j++)
          A[(t+1)%2][i][j] = 0.125f * A[t%2][i-1][j] + 0.125f * A[t%2][i+1][j]
              + 0.125f * A[t%2][i][j-1] + 0.125f * A[t%2][i][j+1]
              + 0.5f * A[t%2][i][j];
    """
    detected = parse_stencil(source, name="heat2d")
    pattern = detected.pattern
    assert pattern.is_star and pattern.associative

    config = BlockingConfig(bT=4, bS=(64,))
    compiled = api.compile_stencil(pattern, config=config)
    cuda_file = tmp_path / "heat2d.cu"
    cuda_file.write_text(compiled.cuda.full_source)
    assert cuda_file.stat().st_size > 1000

    assert verify_blocking(pattern, GridSpec((80, 80), 12), config).matches

    prediction = api.predict(pattern, config, gpu="V100", grid=(8192, 8192), time_steps=100)
    measurement = api.simulate(pattern, config, gpu="V100", grid=(8192, 8192), time_steps=100)
    assert 0 < measurement.gflops < prediction.gflops


def test_fig6_pipeline_for_one_stencil():
    """One full Fig. 6 column: all frameworks on one stencil and device."""
    name = "j2d5pt"
    grid = (8192, 8192)
    results = {
        "Loop Tiling": api.baseline("loop", name, "V100", grid=grid, time_steps=120).gflops,
        "Hybrid Tiling": api.baseline("hybrid", name, "V100", grid=grid, time_steps=120).gflops,
        "STENCILGEN": api.baseline("stencilgen", name, "V100", grid=grid, time_steps=120).gflops,
        "AN5D (Sconf)": api.simulate(name, api.sconf(name), "V100", grid=grid, time_steps=120).gflops,
    }
    tuned = api.tune(name, gpu="V100", grid=grid, time_steps=120)
    results["AN5D (Tuned)"] = tuned.best.measured_gflops
    results["AN5D (Model)"] = tuned.best.predicted_gflops

    assert min(results.values()) == results["Loop Tiling"]
    assert results["AN5D (Tuned)"] >= results["STENCILGEN"]
    assert results["AN5D (Model)"] >= results["AN5D (Tuned)"]


def test_tuned_configurations_scale_with_stencil_order():
    """Fig. 9: optimal bT decreases as the stencil order increases."""
    tuner = AutoTuner("V100", top_k=3)
    grid = GridSpec((8192, 8192), 120)
    best_bt = {}
    for radius in (1, 4):
        pattern = load_pattern(f"star2d{radius}r")
        best_bt[radius] = tuner.tune(pattern, grid).best_config.bT
    assert best_bt[1] >= best_bt[4]


def test_generated_code_reflects_tuned_configuration():
    tuned = api.tune("j2d5pt", gpu="V100", grid=(8192, 8192), time_steps=120)
    compiled = api.compile_stencil("j2d5pt", config=tuned.best_config)
    assert f"bT={tuned.best_config.bT}" in compiled.kernel_source
    if tuned.best_config.register_limit is not None:
        assert "__launch_bounds__" in compiled.kernel_source
