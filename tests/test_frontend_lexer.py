"""Tests for the C-subset tokenizer."""

import pytest

from repro.frontend.clexer import Lexer, LexerError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != "eof"]


def values(source):
    return [t.value for t in tokenize(source) if t.kind != "eof"]


def test_tokenize_identifiers_and_keywords():
    tokens = tokenize("for (int i = 0; i < n; i++)")
    assert tokens[0].kind == "keyword" and tokens[0].value == "for"
    assert any(t.kind == "ident" and t.value == "n" for t in tokens)


def test_tokenize_ends_with_eof():
    assert tokenize("x")[-1].kind == "eof"


def test_float_literal_with_suffix_keeps_suffix_text():
    token = tokenize("5.1f")[0]
    assert token.kind == "float"
    assert token.value == "5.1f"


def test_integer_literal():
    token = tokenize("118")[0]
    assert token.kind == "int" and token.value == "118"


def test_exponent_literal():
    token = tokenize("1.5e-3")[0]
    assert token.kind == "float" and token.value == "1.5e-3"


def test_malformed_exponent_raises():
    with pytest.raises(LexerError):
        tokenize("1.5e+")


def test_multi_character_operators():
    assert values("a <= b >= c == d != e") == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]


def test_increment_operator_tokenized_as_one():
    assert "++" in values("i++")


def test_modulo_operator():
    assert "%" in values("t % 2")


def test_brackets_and_punctuation():
    assert kinds("A[i][j];") == ["ident", "punct", "ident", "punct", "punct", "ident", "punct", "punct"]


def test_line_comments_are_skipped():
    assert values("a // comment\n b") == ["a", "b"]


def test_block_comments_are_skipped():
    assert values("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("a /* oops")


def test_preprocessor_lines_are_skipped():
    assert values("#define N 512\n x") == ["x"]


def test_unknown_character_raises_with_position():
    with pytest.raises(LexerError) as excinfo:
        tokenize("a @ b")
    assert "line 1" in str(excinfo.value)


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_full_stencil_line_tokenizes():
    source = "A[(t+1)%2][i][j] = (5.1f * A[t%2][i-1][j]) / 118;"
    token_values = values(source)
    assert "A" in token_values and "5.1f" in token_values and "118" in token_values
