"""End-to-end tests for the HTTP campaign service and its wire format.

The service harness starts a real ``CampaignServer`` on an ephemeral port
in a background thread, drives it over HTTP with urllib, and checks the
acceptance contract: a campaign submitted over HTTP produces reports and
store exports *byte-identical* to the same ``CampaignSpec`` run through
``an5d campaign run``, and re-submitting is served 100% from the warm
store.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign.jobs import CampaignSpec, JobSpec
from repro.cli import main
from repro.reporting import ResultTable
from repro.service import CampaignApp, CampaignServer, Request, WorkerSettings, campaign_id
from repro.service.wire import WireError, decode_campaign_spec, decode_job_spec

#: A campaign small enough to run cold in a couple of seconds.
SPEC_JSON = {
    "benchmarks": ["j2d5pt", "star3d1r"],
    "gpus": ["V100"],
    "dtypes": ["float"],
    "kinds": ["tune"],
    "time_steps": 100,
    "interior_2d": [512, 512],
    "interior_3d": [48, 48, 48],
    "top_k": 2,
}

#: The identical campaign, spelled as ``an5d campaign run`` flags.
SPEC_ARGV = [
    "--benchmarks", "j2d5pt,star3d1r",
    "--gpus", "V100",
    "--dtypes", "float",
    "--kinds", "tune",
    "--time-steps", "100",
    "--interior-2d", "512x512",
    "--interior-3d", "48x48x48",
    "--top-k", "2",
]


def _request(server, path, method="GET", data=None):
    """One HTTP round-trip; returns (status, body bytes, headers)."""
    payload = json.dumps(data).encode() if data is not None else None
    request = urllib.request.Request(server.url + path, method=method, data=payload)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read(), dict(response.headers)


def _submit(server, spec=SPEC_JSON):
    status, body, _ = _request(server, "/campaigns", method="POST", data=spec)
    assert status == 202
    return json.loads(body)


def _poll_done(server, cid, runs=1, timeout=120.0):
    """Poll the status endpoint until the campaign's latest run settles."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body, _ = _request(server, f"/campaigns/{cid}")
        status = json.loads(body)
        if status["state"] in ("done", "failed") and status["runs"] >= runs:
            return status
        time.sleep(0.05)
    raise AssertionError(f"campaign {cid} did not settle within {timeout}s")


@pytest.fixture()
def server(tmp_path):
    with CampaignServer(
        host="127.0.0.1", port=0, store=tmp_path / "service.sqlite",
        settings=WorkerSettings(workers=1, concurrency=2),
    ) as running:
        yield running


# -- the end-to-end acceptance path ---------------------------------------------------


def test_http_campaign_matches_cli_end_to_end(server, tmp_path, capsys):
    submitted = _submit(server)
    assert submitted["jobs"] == 2 and submitted["state"] in ("queued", "running")
    cid = submitted["id"]
    status = _poll_done(server, cid)
    assert status["state"] == "done"
    assert status["jobs"] == {"total": 2, "done": 2, "failed": 0, "pending": 0}
    assert status["outcome"]["cache_hit_rate"] == 0.0  # cold run

    # The same CampaignSpec through `an5d campaign run` into a fresh store.
    cli_store = str(tmp_path / "cli.sqlite")
    assert main(["campaign", "run", "--store", cli_store, *SPEC_ARGV]) == 0
    cli_jsonl = tmp_path / "cli.jsonl"
    assert main(["campaign", "export", "--store", cli_store, "-o", str(cli_jsonl)]) == 0
    capsys.readouterr()

    # Acceptance: the streamed HTTP export is byte-identical to the CLI's.
    _, exported, headers = _request(server, f"/campaigns/{cid}/export")
    assert exported == cli_jsonl.read_bytes()
    assert headers["X-Result-Count"] == "2"
    assert headers.get("ETag")

    # The text report matches `an5d campaign report` on the service's store.
    _, report_text, _ = _request(server, f"/campaigns/{cid}/report?kind=table5&format=text")
    assert main(["campaign", "report", "--store", server.app.store.path]) == 0
    assert report_text.decode() == capsys.readouterr().out


def test_resubmit_is_served_entirely_from_warm_cache(server):
    cid = _submit(server)["id"]
    _poll_done(server, cid)
    resubmitted = _submit(server)
    assert resubmitted["id"] == cid  # same content address, same campaign
    status = _poll_done(server, cid, runs=2)
    assert status["runs"] == 2
    assert status["outcome"]["cache_hit_rate"] == 1.0
    assert status["outcome"]["executed"] == 0


def test_report_kinds_and_formats(server):
    cid = _submit(server)["id"]
    _poll_done(server, cid)

    _, body, headers = _request(server, f"/campaigns/{cid}/report?kind=leaderboard")
    assert headers["Content-Type"] == "application/json"
    table = ResultTable.from_payload(json.loads(body))
    assert table.headers[:2] == ["rank", "pattern"] and len(table.rows) == 2

    _, body, _ = _request(server, f"/campaigns/{cid}/report?kind=accuracy&format=jsonl")
    records = [json.loads(line) for line in body.decode().splitlines()]
    assert records and 0.0 < records[0]["mean"] <= 1.0

    _, body, _ = _request(server, f"/campaigns/{cid}/report?kind=summary&format=text")
    assert "tune" in body.decode()


def test_campaigns_sharing_a_store_stay_scoped(server):
    """Counts, reports and exports follow the addressed campaign only."""
    cid = _submit(server)["id"]
    _poll_done(server, cid)
    # A second, disjoint campaign in the same store must not leak into
    # the first campaign's counts, reports or exports.
    other = dict(SPEC_JSON, benchmarks=["j2d9pt"])
    other_cid = _submit(server, other)["id"]
    assert other_cid != cid
    _poll_done(server, other_cid)
    _, body, _ = _request(server, f"/campaigns/{cid}")
    assert json.loads(body)["jobs"]["total"] == 2
    _, body, _ = _request(server, f"/campaigns/{cid}/report?kind=table5")
    patterns = [row[0] for row in json.loads(body)["rows"]]
    assert patterns == ["j2d5pt", "star3d1r"]  # no j2d9pt leakage
    _, body, _ = _request(server, f"/campaigns/{other_cid}/report?kind=leaderboard")
    assert [row[1] for row in json.loads(body)["rows"]] == ["j2d9pt"]
    _, exported, _ = _request(server, f"/campaigns/{other_cid}/export")
    assert [json.loads(line)["pattern"] for line in exported.decode().splitlines()] == ["j2d9pt"]
    _, body, _ = _request(server, "/campaigns")
    listed = json.loads(body)["campaigns"]
    assert [c["id"] for c in listed] == [cid, other_cid]  # submission order


def test_healthz_live(server):
    status, body, _ = _request(server, "/healthz")
    payload = json.loads(body)
    assert status == 200 and payload["status"] == "ok"
    assert payload["store"].endswith("service.sqlite")
    assert any("/campaigns" in route for route in payload["routes"])


def test_sharded_worker_scopes_status_and_exports(tmp_path):
    """A shard-0 instance reports progress over its own slice, not the
    whole matrix — otherwise a finished shard looks forever pending."""
    from repro.campaign.store import ResultStore
    from repro.service import CampaignWorker

    spec = CampaignSpec.from_json(dict(SPEC_JSON, benchmarks=["j2d5pt", "j2d9pt", "star3d1r"]))
    shard_jobs = [job for job in spec.expand() if job.shard(2) == 0]
    assert 0 < len(shard_jobs) < spec.size()  # the split is non-trivial
    store = ResultStore(tmp_path / "shard.sqlite")
    worker = CampaignWorker(store, WorkerSettings(shards=2, shard_index=0))
    worker.start()
    try:
        record = worker.submit(spec)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status = worker.status(record.id)
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert status["state"] == "done"
        assert status["jobs"] == {
            "total": len(shard_jobs), "done": len(shard_jobs), "failed": 0, "pending": 0,
        }
        assert worker.job_keys(record.id) == [job.key() for job in shard_jobs]
    finally:
        assert worker.stop() is True
        store.close()


# -- HTTP error contract --------------------------------------------------------------


def _expect_http_error(server, path, method="GET", data=None):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _request(server, path, method=method, data=data)
    error = excinfo.value
    return error.code, json.loads(error.read())


def test_submit_rejects_unknown_fields(server):
    code, payload = _expect_http_error(
        server, "/campaigns", method="POST", data={"benchmark": ["j2d5pt"]}
    )
    assert code == 400 and "unknown campaign spec field" in payload["error"]


def test_submit_rejects_bad_json_and_bad_values(server):
    request = urllib.request.Request(
        server.url + "/campaigns", method="POST", data=b"{not json"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400

    code, payload = _expect_http_error(
        server, "/campaigns", method="POST", data={"benchmarks": ["nope"]}
    )
    assert code == 400 and "nope" in payload["error"]

    code, payload = _expect_http_error(
        server, "/campaigns", method="POST", data={"gpus": ["H100"]}
    )
    assert code == 400 and "H100" in payload["error"]


def test_unknown_campaign_and_unknown_route_are_404(server):
    for path in ("/campaigns/c000000000000", "/campaigns/c000000000000/export", "/nope"):
        code, payload = _expect_http_error(server, path)
        assert code == 404, path
        assert "error" in payload


def test_wrong_method_is_405(server):
    code, _ = _expect_http_error(server, "/campaigns", method="DELETE")
    assert code == 405


def test_unknown_report_kind_is_400(server):
    cid = _submit(server)["id"]
    code, payload = _expect_http_error(server, f"/campaigns/{cid}/report?kind=pie")
    assert code == 400 and "unknown report kind" in payload["error"]


# -- wire format: content-address stability across submit routes ----------------------


def test_campaign_spec_json_round_trip_is_key_identical():
    spec = CampaignSpec.from_json(SPEC_JSON)
    again = CampaignSpec.from_json(spec.to_json())
    assert again == spec and again.key() == spec.key()
    assert [j.key() for j in again.expand()] == [j.key() for j in spec.expand()]


def test_campaign_id_stable_across_aliases_and_spellings():
    canonical = CampaignSpec.from_json(SPEC_JSON)
    # GPU aliases, repeated matrix entries and case differences all collapse
    # to the same normalised spec — and therefore the same campaign id.
    aliased = CampaignSpec.from_json(dict(SPEC_JSON, gpus=["v100", "volta", "V100"]))
    assert campaign_id(aliased) == campaign_id(canonical)
    assert aliased.gpus == ("V100",)
    repeated = CampaignSpec.from_json(
        dict(SPEC_JSON, benchmarks=["j2d5pt", "j2d5pt", "star3d1r"])
    )
    assert campaign_id(repeated) == campaign_id(canonical)


def test_job_spec_json_round_trip_normalizes_gpu_aliases():
    job = JobSpec("tune", "j2d5pt", "V100", "float", (512, 512), 100, (("top_k", 2),))
    aliased = JobSpec.from_json(dict(job.to_json(), gpu="volta"))
    assert aliased.gpu == "V100"
    assert aliased.key() == job.key()  # content address is submit-route independent
    assert JobSpec.from_json(job.to_json()) == job


def test_job_spec_rejects_unknown_and_missing_fields():
    with pytest.raises(ValueError, match="unknown job spec field"):
        JobSpec.from_json({"kind": "tune", "patern": "j2d5pt"})
    with pytest.raises(ValueError, match="missing job spec field"):
        JobSpec.from_json({"kind": "tune", "pattern": "j2d5pt"})
    with pytest.raises(ValueError, match="params"):
        JobSpec.from_json(
            {"kind": "tune", "pattern": "j2d5pt", "gpu": "V100", "dtype": "float",
             "interior": [512, 512], "time_steps": 100, "params": [1, 2]}
        )
    # A string interior would iterate digit-by-digit into (5, 1, 2).
    with pytest.raises(ValueError, match="interior"):
        JobSpec.from_json(
            {"kind": "tune", "pattern": "j2d5pt", "gpu": "V100", "dtype": "float",
             "interior": "512", "time_steps": 100}
        )


def test_wire_decoders_map_failures_to_400():
    for body in (b"", b"[1, 2]", b"\xff\xfe", json.dumps({"gpus": "V100"}).encode()):
        with pytest.raises(WireError) as excinfo:
            decode_campaign_spec(body)
        assert excinfo.value.status == 400
    with pytest.raises(WireError):
        decode_job_spec({"kind": "frobnicate"})


# -- the app is drivable without a socket ---------------------------------------------


def test_app_handlers_work_without_http(tmp_path):
    app = CampaignApp(tmp_path / "app.sqlite", WorkerSettings())
    app.start()
    try:
        response = app.handle(Request("GET", "/healthz"))
        assert response.status == 200
        submitted = app.handle(
            Request("POST", "/campaigns", body=json.dumps(SPEC_JSON).encode())
        )
        assert submitted.status == 202
        cid = json.loads(submitted.body)["id"]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status = json.loads(app.handle(Request("GET", f"/campaigns/{cid}")).body)
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert status["state"] == "done"
        export = app.handle(Request("GET", f"/campaigns/{cid}/export"))
        assert export.stream is not None
        assert len(b"".join(export.stream).splitlines()) == 2
    finally:
        app.close()


# -- observability: /metrics, wire-propagated traces ----------------------------------


def test_metrics_endpoint_serves_parseable_prometheus(server):
    from repro.obs import parse_prometheus

    cid = _submit(server)["id"]
    _poll_done(server, cid)
    status, body, headers = _request(server, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    samples = parse_prometheus(body.decode("utf-8"))

    routes = {labels["route"] for labels, _ in samples["requests_total"]}
    assert {"submit_campaign", "campaign_status"} <= routes
    codes = {labels["code"] for labels, _ in samples["requests_total"]}
    assert {"202", "200"} <= codes
    assert sum(v for _, v in samples["requests_total"]) >= 3

    # Per-route latency histogram and per-kind job metrics from the run.
    assert any(l["route"] == "submit_campaign" for l, _ in samples["request_seconds_bucket"])
    done = {
        l["kind"]: v for l, v in samples["jobs_completed_total"] if l["status"] == "ok"
    }
    assert done.get("tune", 0) == len(SPEC_JSON["benchmarks"])
    assert any(v > 0 for _, v in samples["store_commit_seconds_count"])


def test_wire_trace_propagates_from_submit_to_job_spans(server):
    from repro.obs import TraceContext, context_to_wire, new_span_id, new_trace_id

    trace = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
    envelope = dict(SPEC_JSON)
    envelope["trace"] = context_to_wire(trace)
    status, body, _ = _request(server, "/campaigns", method="POST", data=envelope)
    assert status == 202
    submitted = json.loads(body)
    assert submitted["trace_id"] == trace.trace_id
    _poll_done(server, submitted["id"])

    # The trace envelope rides next to the payload, never inside it: the
    # campaign id must be identical to a traceless submit of the same spec.
    assert _submit(server)["id"] == submitted["id"]

    _, body, _ = _request(server, f"/trace/{trace.trace_id}")
    tree = json.loads(body)
    assert tree["trace_id"] == trace.trace_id
    spans = {s["name"]: s for s in tree["spans"]}
    assert {"campaign.submit", "campaign.run"} <= set(spans)
    # The submit span joins the client's trace; the runs hang off the submit.
    assert spans["campaign.submit"]["parent_span_id"] == trace.span_id
    assert spans["campaign.run"]["parent_span_id"] == spans["campaign.submit"]["span_id"]
    assert all(s["trace_id"] == trace.trace_id for s in tree["spans"])


def test_malformed_trace_envelopes_are_400(server):
    good = {"trace_id": "ab" * 16, "span_id": "cd" * 8}
    for bad, needle in (
        ({**good, "started_at": 123.0}, "no timestamps"),
        ({**good, "trace_id": "NOT-HEX"}, "lowercase hex"),
        ({"trace_id": good["trace_id"]}, "span_id"),
        ("just-a-string", "JSON object"),
    ):
        code, payload = _expect_http_error(
            server, "/campaigns", method="POST", data={**SPEC_JSON, "trace": bad}
        )
        assert code == 400 and needle in payload["error"], bad


def test_unknown_trace_is_404(server):
    code, payload = _expect_http_error(server, "/trace/" + "f" * 32)
    assert code == 404 and "unknown trace" in payload["error"]
