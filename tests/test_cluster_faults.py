"""Chaos suite: the wire-native result path under injected faults.

The acceptance contract of the robustness layer: a campaign sharded over
wire-native workers (no filesystem access to the store), with drops,
duplicates and a mid-campaign coordinator kill injected, still completes
and exports *byte-identical* to a solo run.  The supporting invariants are
each pinned by their own test:

* the retry taxonomy (retryable vs terminal) and the jittered backoff;
* the coordinator lease as a CAS (fresh acquire, renewal, steal, release);
* receiver-stamped liveness — sender clocks never enter the registry, so
  instances whose wall clocks disagree by minutes agree on liveness;
* commit idempotency — the same batch committed N times interleaved
  across two workers leaves one row per key and an unchanged export;
* the journal — results survive a coordinator outage and a worker crash.
"""

import json
import random
import time

import pytest

from repro.campaign.jobs import CampaignSpec
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.store import ResultStore, make_record
from repro.cluster import (
    ClusterClient,
    ClusterError,
    ClusterHTTPError,
    FaultPlan,
    FaultyClusterClient,
    InstanceRegistry,
    LocalCluster,
    RETRYABLE_STATUSES,
    RemoteStore,
    backoff_delay,
    is_retryable,
    kill_instance,
)
from repro.service.wire import WireError, decode_instance_id, decode_member

#: Model-only matrix: fast (batched engine), still multi-benchmark.
PREDICT_SPEC = CampaignSpec(
    benchmarks=("j2d5pt", "j2d9pt", "gradient2d", "star3d1r", "star3d2r", "j3d27pt"),
    gpus=("V100",),
    dtypes=("float",),
    kinds=("predict",),
    time_steps=100,
    interior_2d=(512, 512),
    interior_3d=(48, 48, 48),
)


#: Wider matrix for the end-to-end chaos runs: more jobs => more wire
#: traffic => the seeded fault plans reliably inject something.
CHAOS_SPEC = CampaignSpec(
    benchmarks=PREDICT_SPEC.benchmarks,
    gpus=("V100", "P100"),
    dtypes=("float",),
    kinds=("predict", "tune"),
    time_steps=100,
    interior_2d=(512, 512),
    interior_3d=(48, 48, 48),
)


def _solo_export(tmp_path, spec=PREDICT_SPEC):
    """The reference artifact every chaos run must reproduce byte for byte."""
    with ResultStore(tmp_path / "solo.sqlite") as store:
        outcome = CampaignScheduler(spec, store).run()
        assert outcome.ok
        path = store.export_jsonl(tmp_path / "solo.jsonl")
    return path.read_bytes()


def _wait_submission(client, url, sid, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.submission_status(url, sid)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"submission {sid} did not settle within {timeout}s")


# -- error taxonomy and backoff -------------------------------------------------------


def test_retry_taxonomy_separates_transient_from_terminal():
    for status in sorted(RETRYABLE_STATUSES):
        assert is_retryable(ClusterHTTPError(status, {}))
    for status in (400, 404, 409, 422):
        assert not is_retryable(ClusterHTTPError(status, {}))
    assert is_retryable(ClusterError("connection refused"))  # no status: transport
    assert not is_retryable(ValueError("not a cluster error at all"))


def test_backoff_delay_is_capped_exponential_with_jitter():
    rng = random.Random(0)
    for attempt in range(12):
        ceiling = min(0.05 * (2 ** attempt), 2.0)
        samples = [backoff_delay(attempt, rng=rng) for _ in range(50)]
        assert all(0.1 * ceiling <= s <= ceiling for s in samples)
    # Jitter draws differ (full jitter, not a fixed schedule).
    assert len({backoff_delay(6, rng=rng) for _ in range(20)}) > 1


# -- fault plan and injection ---------------------------------------------------------


def test_fault_plan_validates_probabilities():
    assert not FaultPlan().active
    assert FaultPlan(drop=0.1).active
    with pytest.raises(ValueError, match=r"must lie in \[0, 1\]"):
        FaultPlan(drop=1.5)
    with pytest.raises(ValueError, match="non-negative"):
        FaultPlan(delay=0.1, delay_s=-1.0)


def test_fault_injection_is_seeded_and_tallied():
    class Transport(FaultyClusterClient):
        def __init__(self, plan):
            super().__init__(plan)
            self.sent = 0

        def request(self, url, method="GET", payload=None, data=None, content_type=None):
            # Bypass FaultyClusterClient.request's real send by overriding at
            # the ClusterClient layer instead: count what actually "lands".
            faults = self._decide()
            if faults["drop"]:
                self.injected["drop"] += 1
                raise ClusterError("injected drop")
            if faults["duplicate"]:
                self.injected["duplicate"] += 1
                self.sent += 2
                return (200, b"{}")
            self.sent += 1
            return (200, b"{}")

    outcomes = []
    for _ in range(2):  # identical seed => identical fault schedule
        client = Transport(FaultPlan(drop=0.3, duplicate=0.2, seed=42))
        log = []
        for index in range(50):
            try:
                client.request(f"http://peer/{index}")
                log.append("ok")
            except ClusterError:
                log.append("drop")
        outcomes.append((tuple(log), client.injected_counts(), client.sent))
    assert outcomes[0] == outcomes[1]
    counts = outcomes[0][1]
    assert counts["drop"] > 0 and counts["duplicate"] > 0


def test_injected_faults_surface_to_the_caller(tmp_path):
    """A drop is not quietly absorbed by the stock retry loop: the machinery
    *above* the client (journal, flush backoff, peer rotation) must recover."""
    client = FaultyClusterClient(FaultPlan(drop=1.0, seed=1), retries=3)
    with pytest.raises(ClusterError, match="injected drop"):
        client.request("http://127.0.0.1:9/healthz")
    assert client.injected_counts()["drop"] == 1  # one draw, not one per retry


# -- coordinator lease: CAS over the store --------------------------------------------


def test_lease_acquire_renew_steal_release(tmp_path):
    store = ResultStore(tmp_path / "lease.sqlite")
    assert store.acquire_lease("coordinator", "c0", ttl=10.0, now=100.0)
    lease = store.get_lease("coordinator")
    assert lease["holder"] == "c0" and lease["expires_at"] == 110.0
    # A live lease cannot be stolen.
    assert not store.acquire_lease("coordinator", "c1", ttl=10.0, now=105.0)
    # The holder renews (extends expiry, keeps the original acquired_at).
    assert store.acquire_lease("coordinator", "c0", ttl=10.0, now=108.0)
    lease = store.get_lease("coordinator")
    assert lease["expires_at"] == 118.0 and lease["acquired_at"] == 100.0
    # Expiry opens the lease to any contender; the seizure re-stamps it.
    assert store.acquire_lease("coordinator", "c1", ttl=10.0, now=119.0)
    lease = store.get_lease("coordinator")
    assert lease["holder"] == "c1" and lease["acquired_at"] == 119.0
    # Release is holder-gated; a stale holder cannot drop the new lease.
    assert not store.release_lease("coordinator", "c0")
    assert store.release_lease("coordinator", "c1")
    assert store.get_lease("coordinator") is None
    store.close()


def test_standby_coordinator_defers_while_lease_is_held(tmp_path):
    from repro.cluster import ClusterCoordinator

    store = ResultStore(tmp_path / "standby.sqlite")
    now = [0.0]
    registry = InstanceRegistry(store, liveness_timeout=5.0, clock=lambda: now[0])
    primary = ClusterCoordinator(store, registry, instance_id="c0", lease_ttl=5.0)
    standby = ClusterCoordinator(store, registry, instance_id="c1", lease_ttl=5.0)
    assert primary.holds_lease()
    # The standby's tick is a no-op while the primary renews.
    assert standby.tick() == {"settled": [], "redispatched": [], "standby": True}
    # A standby still *accepts* submissions — they queue for the holder.
    submitted = standby.submit(PREDICT_SPEC)
    assert submitted["state"] == "queued"
    assert store.get_lease("coordinator")["holder"] == "c0"
    # The primary stops renewing; past the TTL the standby's tick seizes it.
    now[0] += 6.0
    report = standby.tick()
    assert "standby" not in report
    assert store.get_lease("coordinator")["holder"] == "c1"
    store.close()


# -- receiver-stamped liveness (clock-skew immunity) ----------------------------------


def test_clock_skew_between_instances_cannot_break_liveness(tmp_path):
    """Two members whose wall clocks disagree by minutes agree on liveness,
    because heartbeat arrivals are stamped with the *receiver's* clock and
    the wire envelope cannot even carry a sender timestamp."""
    receiver_now = [1000.0]
    store = ResultStore(tmp_path / "skew.sqlite")
    registry = InstanceRegistry(store, liveness_timeout=5.0, clock=lambda: receiver_now[0])
    # w-ahead's local clock is 5 minutes ahead; w-behind's is 3 minutes
    # behind.  Neither clock appears anywhere in the envelopes below — the
    # strict decoders are what a wire member's bytes pass through.
    for instance_id in ("w-ahead", "w-behind"):
        member = decode_member(
            json.dumps(
                {"instance_id": instance_id, "host": "127.0.0.1", "port": 1, "role": "worker"}
            ).encode()
        )
        registry.register(**member)
    receiver_now[0] += 4.0
    for instance_id in ("w-ahead", "w-behind"):
        registry.record_heartbeat(decode_instance_id(json.dumps({"instance_id": instance_id}).encode()))
    receiver_now[0] += 4.0  # 4s since last beat: both inside the 5s window
    assert {i.instance_id for i in registry.live()} == {"w-ahead", "w-behind"}
    receiver_now[0] += 2.0  # 6s: both lapse together, on the receiver's clock
    assert registry.live() == []
    store.close()


def test_wire_decoders_reject_sender_timestamps():
    member = {"instance_id": "w1", "host": "h", "port": 1, "role": "worker"}
    for poison in ("heartbeat_at", "last_seen", "timestamp"):
        with pytest.raises(WireError, match="receiver-stamped") as excinfo:
            decode_member(json.dumps({**member, poison: 12345.0}).encode())
        assert excinfo.value.status == 400
    with pytest.raises(WireError, match="receiver-stamped") as excinfo:
        decode_instance_id(json.dumps({"instance_id": "w1", "heartbeat_at": 1.0}).encode())
    assert excinfo.value.status == 400


# -- commit idempotency (the property that makes replays safe) ------------------------


@pytest.mark.parametrize("seed", range(4))
def test_replayed_interleaved_commits_leave_one_row_per_key(tmp_path, seed):
    """The same result batch committed N times, interleaved across two
    workers in random chunkings, yields exactly one row per key and an
    export byte-identical to committing each record once."""
    rng = random.Random(seed)
    jobs = PREDICT_SPEC.expand()
    records = [make_record(job, {"metric": job.key()[:8]}) for job in jobs]
    # Reference: each record committed exactly once.
    with ResultStore(tmp_path / "once.sqlite") as store:
        assert store.commit_records(records, now=1.0) == len(records)
        reference = store.export_jsonl(tmp_path / "once.jsonl").read_bytes()

    store = ResultStore(tmp_path / f"replay{seed}.sqlite")
    # Two workers hold overlapping halves; a few records start as 'failed'
    # (a failed row must be upgraded by a later ok commit, never vice versa).
    half = len(records) // 2
    workers = [records[:half + 2], records[half - 2:]]
    failed_first = [dict(r, status="failed", payload=json.dumps({"error": "transient"}))
                    for r in rng.sample(records, 3)]
    store.commit_records(failed_first, now=0.5)
    for replay in range(4):  # N replays, interleaved chunk by chunk
        batches = []
        for batch in workers:
            shuffled = rng.sample(batch, len(batch))
            size = rng.randint(1, max(1, len(shuffled) // 2))
            batches.extend(shuffled[i:i + size] for i in range(0, len(shuffled), size))
        rng.shuffle(batches)
        for chunk in batches:
            store.commit_records(chunk, now=float(replay))
    assert store.count() == len(records)  # one row per key, no duplicates
    assert store.count(status="ok") == len(records)  # failures were upgraded
    replayed = store.export_jsonl(tmp_path / f"replay{seed}.jsonl").read_bytes()
    store.close()
    assert replayed == reference


def test_ok_rows_are_immutable_under_conflicting_replays(tmp_path):
    """First ok wins: a late commit with a *different* payload for an
    ok key is dropped, so replays can never rewrite history."""
    job = PREDICT_SPEC.expand()[0]
    first = make_record(job, {"winner": True})
    conflicting = make_record(job, {"winner": False})
    with ResultStore(tmp_path / "immutable.sqlite") as store:
        assert store.commit_records([first]) == 1
        assert store.commit_records([conflicting]) == 0
        assert store.get(first["key"]).payload == {"winner": True}


# -- the journal: durability across outages and crashes -------------------------------


def test_journal_survives_outage_and_replays_after_crash(tmp_path):
    """put() while every peer is down loses nothing: the journal holds the
    results, a restarted store replays them, and the next reachable peer
    receives the full set."""
    journal = tmp_path / "worker.journal.jsonl"
    dead_url = "http://127.0.0.1:9"  # nothing listens on the discard port
    jobs = PREDICT_SPEC.expand()[:4]
    remote = RemoteStore(dead_url, journal=journal, flush_interval=10.0)
    try:
        for job in jobs:
            remote.put(job, {"metric": 1})
        # Offline, the journal alone answers status queries (dedupe works).
        assert remote.statuses([jobs[0].key()])[jobs[0].key()] == "ok"
        assert remote.has_ok(jobs[0])
        with pytest.raises(ClusterError):
            remote.flush()
        assert remote.pending_count() == len(jobs)
    finally:
        remote.close()  # "crash": the final drain fails, the journal stays

    # A new process on the same journal replays the unacknowledged records,
    # skipping a torn final line from a crash mid-append.
    with journal.open("a") as handle:
        handle.write('{"key": "torn-')
    revived = RemoteStore(dead_url, journal=journal, flush_interval=10.0)
    try:
        assert revived.pending_count() == len(jobs)
        # A peer comes up: the drain lands every journaled result.
        from repro.service import CampaignApp, Request, WorkerSettings

        app = CampaignApp(tmp_path / "coord.sqlite", WorkerSettings())
        app.start()
        try:
            server_store = app.store

            class InProcessClient(ClusterClient):
                def request(self, url, method="GET", payload=None, data=None, content_type=None):
                    if not url.startswith("http://peer"):
                        raise ClusterError(f"unreachable peer {url}")
                    body = data if data is not None else (
                        json.dumps(payload).encode() if payload is not None else None
                    )
                    path = url.split("http://peer", 1)[1]
                    response = app.handle(Request(method, path, body=body))
                    if response.status >= 400:
                        raise ClusterHTTPError(response.status, json.loads(response.body))
                    return response.status, response.body

            revived.client = InProcessClient()
            revived.update_peers(["http://peer"])
            assert revived.flush() == len(jobs)
            assert revived.pending_count() == 0
            assert server_store.count() == len(jobs)
            assert journal.read_text() == ""  # drained journals are truncated
        finally:
            app.close()
    finally:
        revived.close()


# -- end-to-end chaos: wire workers, faults, coordinator kill -------------------------


def test_wire_workers_under_faults_export_byte_identical(tmp_path):
    """3 instances whose workers have no filesystem access to the store,
    with 10% drops and 5% duplicates injected into every worker request,
    complete the campaign with an export byte-identical to a solo run."""
    client = ClusterClient()
    faults = FaultPlan(drop=0.1, duplicate=0.05, seed=7)
    with LocalCluster(
        store=tmp_path / "chaos.sqlite",
        instances=2,
        standbys=0,
        wire_workers=True,
        faults=faults,
        workdir=tmp_path,
    ) as cluster:
        for worker in cluster.workers:
            assert not worker.app.store_native  # no filesystem store access
            assert worker.app.store.path.startswith("wire:")
        submitted = client.submit(cluster.url, CHAOS_SPEC)
        status = _wait_submission(client, cluster.url, submitted["id"])
        assert status["state"] == "done"
        assert status["jobs"]["done"] == CHAOS_SPEC.size()
        injected = {}
        for worker in cluster.workers:
            for fault, count in worker.app.store.client.injected_counts().items():
                injected[fault] = injected.get(fault, 0) + count
        assert sum(injected.values()) > 0  # the run really was faulty
        exported = client.export(cluster.url, submitted["id"])
    assert exported == _solo_export(tmp_path, CHAOS_SPEC)


def test_coordinator_kill_fails_over_and_completes(tmp_path):
    """Kill the coordinator mid-campaign: the standby seizes the expired
    lease, resumes fan-out from the store-backed queue, and the campaign
    finishes with a byte-identical export."""
    client = ClusterClient()
    with LocalCluster(
        store=tmp_path / "failover.sqlite",
        instances=2,
        standbys=1,
        wire_workers=True,
        faults=FaultPlan(drop=0.05, duplicate=0.05, seed=99),
        workdir=tmp_path,
    ) as cluster:
        coordinators = {
            server.app.cluster.instance_id: server
            for server in (cluster.coordinator, cluster.standbys[0])
        }
        submitted = client.submit(cluster.url, PREDICT_SPEC)
        sid = submitted["id"]
        # Whichever coordinator ticked first holds the lease; kill *it*.
        holder_id = cluster.store.get_lease("coordinator")["holder"]
        survivor_id = next(iid for iid in coordinators if iid != holder_id)
        survivor = coordinators[survivor_id]
        time.sleep(0.3)  # let the campaign get underway
        kill_instance(coordinators[holder_id])
        # The survivor's monitor tick finds the lease expired and seizes it.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            lease = cluster.store.get_lease("coordinator")
            if lease is not None and lease["holder"] == survivor_id:
                break
            time.sleep(0.05)
        assert cluster.store.get_lease("coordinator")["holder"] == survivor_id
        # Workers re-resolve the commit target from heartbeat peer lists;
        # the campaign settles under the new coordinator.
        status = _wait_submission(client, survivor.url, sid)
        assert status["state"] == "done"
        assert status["jobs"]["done"] == PREDICT_SPEC.size()
        exported = client.export(survivor.url, sid)
    assert exported == _solo_export(tmp_path)


def test_graceful_shutdown_hands_the_lease_to_a_standby(tmp_path):
    """stop() releases the lease explicitly, so a standby takes over without
    waiting out the TTL (crash vs graceful are distinct paths)."""
    with LocalCluster(
        store=tmp_path / "handover.sqlite",
        instances=1,
        standbys=1,
        wire_workers=True,
        workdir=tmp_path,
    ) as cluster:
        coordinators = {
            server.app.cluster.instance_id: server
            for server in (cluster.coordinator, cluster.standbys[0])
        }
        # The first monitor tick writes the lease; wait for it to appear.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            lease = cluster.store.get_lease("coordinator")
            if lease is not None:
                break
            time.sleep(0.05)
        holder_id = cluster.store.get_lease("coordinator")["holder"]
        survivor_id = next(iid for iid in coordinators if iid != holder_id)
        coordinators[holder_id].stop()
        # Released, not expired: the next survivor tick acquires it fresh —
        # handover completes well inside the liveness TTL.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            lease = cluster.store.get_lease("coordinator")
            if lease is not None and lease["holder"] == survivor_id:
                break
            time.sleep(0.05)
        assert cluster.store.get_lease("coordinator")["holder"] == survivor_id


# -- observability under faults (PR 7 acceptance) -------------------------------------


def test_chaos_campaign_is_fully_observable(tmp_path):
    """The telemetry spine under fire: a wire-worker cluster with injected
    faults and a mid-campaign worker kill yields (a) per-instance /metrics
    with per-route and per-job-kind histograms, (b) one trace id linking
    submit -> fan-out -> shard assignment -> run -> commit across the wire,
    (c) ``an5d top`` rows showing the re-assignment, and (d) an export still
    byte-identical to a solo run."""
    import threading

    from repro.obs import TraceContext, new_span_id, new_trace_id, parse_prometheus
    from repro.obs import top as obs_top

    client = ClusterClient()
    trace = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
    with LocalCluster(
        store=tmp_path / "observed.sqlite",
        instances=2,
        standbys=0,
        wire_workers=True,
        faults=FaultPlan(drop=0.1, duplicate=0.05, seed=7),
        workdir=tmp_path,
    ) as cluster:
        victim = cluster.workers[0]
        release = threading.Event()
        original_execute = victim.app.worker._execute

        def blocked_execute(record, spec, plan):
            # Park the victim's shard until the test lets go: its shard is
            # deterministically incomplete when the victim is killed, so the
            # coordinator *must* re-home it (first fan-out never counts).
            release.wait(timeout=120)
            return original_execute(record, spec, plan)

        victim.app.worker._execute = blocked_execute
        try:
            submitted = client.submit(cluster.url, PREDICT_SPEC, trace=trace)
            assert submitted["trace_id"] == trace.trace_id
            kill_instance(victim)  # crash-stop: heartbeats cease, shard orphans
            status = _wait_submission(client, cluster.url, submitted["id"])
        finally:
            release.set()
        assert status["state"] == "done"
        assert status["jobs"]["done"] == PREDICT_SPEC.size()

        # (a) per-instance /metrics: the coordinator counts the re-homing...
        _, body = client.request(f"{cluster.url}/metrics")
        coord = parse_prometheus(body.decode("utf-8"))
        assert sum(v for _, v in coord["cluster_reassign_total"]) >= 1
        assert sum(v for _, v in coord["cluster_fanout_total"]) >= 2
        routes = {labels["route"] for labels, _ in coord["requests_total"]}
        assert "cluster_submit" in routes
        assert any(
            labels["route"] == "cluster_submit"
            for labels, _ in coord["request_seconds_bucket"]
        )
        # ...and the surviving worker ran jobs of the campaign's kind.
        survivor = cluster.workers[1]
        _, body = client.request(f"{survivor.url}/metrics")
        worker_samples = parse_prometheus(body.decode("utf-8"))
        ok_jobs = sum(
            v
            for labels, v in worker_samples["jobs_completed_total"]
            if labels["kind"] == "predict" and labels["status"] == "ok"
        )
        assert ok_jobs == PREDICT_SPEC.size()  # the survivor ran every shard
        assert any(
            labels["kind"] == "predict"
            for labels, _ in worker_samples["job_execution_seconds_bucket"]
        )

        # (b) one trace id spans the whole distributed path.
        _, body = client.request(f"{cluster.url}/trace/{trace.trace_id}")
        tree = json.loads(body)
        assert tree["trace_id"] == trace.trace_id
        spans = tree["spans"]
        assert all(s["trace_id"] == trace.trace_id for s in spans)
        names = {s["name"] for s in spans}
        assert {
            "cluster.submit",
            "cluster.fan_out",
            "campaign.assigned",
            "campaign.run",
            "results.commit",
        } <= names
        by_id = {s["span_id"]: s for s in spans}
        submit_span = next(s for s in spans if s["name"] == "cluster.submit")
        assert submit_span["parent_span_id"] == trace.span_id
        for name, parent_name in (
            ("cluster.fan_out", "cluster.submit"),
            ("campaign.assigned", "cluster.fan_out"),
            ("campaign.run", "campaign.assigned"),
        ):
            child = next(s for s in spans if s["name"] == name)
            assert by_id[child["parent_span_id"]]["name"] == parent_name

        # (c) `an5d top` sees the cluster: live rows plus the counted re-home.
        rows = obs_top.collect(cluster.url)
        assert len(rows) == 3  # coordinator + 2 workers (one of them dead)
        assert sum(float(row.get("reassigned", 0)) for row in rows) >= 1
        assert any(not row["reachable"] for row in rows)  # the killed victim
        screen = obs_top.render(rows)
        assert "REASG" in screen and "cluster:" in screen

        # (d) the export is still byte-identical to a solo run.
        exported = client.export(cluster.url, submitted["id"])
    assert exported == _solo_export(tmp_path)
