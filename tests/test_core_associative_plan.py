"""Tests for the partial-summation decomposition and the kernel plan."""

import pytest

from repro.core.associative import (
    decompose_partial_sums,
    partial_sum_count,
    shift_expr_to_source_plane,
    subplane_contributions,
)
from repro.core.config import BlockingConfig
from repro.core.plan import PipelineScheduler
from repro.core.transform import an5d_transform
from repro.ir.expr import evaluate, grid_reads
from repro.stencils.generators import box_stencil


# -- associative decomposition -------------------------------------------------


def test_partial_sum_count_matches_column_height(box2d1r, j3d27pt):
    assert partial_sum_count(box2d1r) == 3
    assert partial_sum_count(j3d27pt) == 3
    assert partial_sum_count(box_stencil(2, 2)) == 5


def test_decomposition_rejects_non_associative(gradient2d):
    with pytest.raises(ValueError):
        decompose_partial_sums(gradient2d)


def test_partial_sums_reconstruct_original_value(box2d1r, j2d5pt):
    for pattern in (box2d1r, j2d5pt):
        steps = decompose_partial_sums(pattern)

        def reader(read):
            # A deterministic but non-trivial function of the offset.
            return 1.0 + 0.3 * read.offset[0] + 0.7 * read.offset[-1]

        direct = evaluate(pattern.expr, reader)
        recomposed = sum(evaluate(step.expr, reader) for step in steps)
        assert recomposed == pytest.approx(direct, rel=1e-12)


def test_partial_sum_offsets_cover_column(box2d1r):
    steps = decompose_partial_sums(box2d1r)
    assert [s.source_offset for s in steps] == [-1, 0, 1]
    assert all(s.term_count == 3 for s in steps)


def test_partial_sum_terms_read_single_subplane(box2d1r):
    for step in decompose_partial_sums(box2d1r):
        planes = {read.offset[0] for read in grid_reads(step.expr)}
        assert planes == {step.source_offset}


def test_subplane_contributions_structure(box2d1r):
    contributions = subplane_contributions(box2d1r)
    destinations = [dest for dest, _ in contributions[0]]
    assert sorted(destinations) == [-1, 0, 1]


def test_shift_expr_to_source_plane_zeroes_streaming_offset(box2d1r):
    step = decompose_partial_sums(box2d1r)[0]
    shifted = shift_expr_to_source_plane(step.expr)
    assert {read.offset[0] for read in grid_reads(shifted)} == {0}
    # In-plane offsets are preserved.
    assert {read.offset[1] for read in grid_reads(shifted)} == {-1, 0, 1}


# -- kernel plan -------------------------------------------------------------------


def test_plan_has_three_phases(j2d5pt):
    plan = an5d_transform(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    assert [phase.name for phase in plan.phases] == ["head", "inner", "tail"]
    assert plan.head is plan.phases[0]
    assert plan.tail is plan.phases[-1]


def test_macro_names_cover_all_time_steps(j2d5pt):
    plan = an5d_transform(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    assert plan.macro_names == ["LOAD", "CALC1", "CALC2", "CALC3", "STORE"]


def test_head_length_is_rotation_aligned(j2d5pt, j2d9pt):
    for pattern, bT in ((j2d5pt, 4), (j2d5pt, 7), (j2d9pt, 3)):
        scheduler = PipelineScheduler(pattern, BlockingConfig(bT=bT, bS=(64,)))
        head = scheduler.head_length()
        assert head % scheduler.period == 0
        assert head > bT * pattern.radius


def test_head_length_matches_fig5_example(j2d5pt):
    # bT = 4, rad = 1 gives the 9-load head shown in Fig. 5.
    scheduler = PipelineScheduler(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    assert scheduler.head_length() == 9


def test_inner_phase_is_one_rotation_period(j2d5pt, j2d9pt):
    for pattern in (j2d5pt, j2d9pt):
        plan = an5d_transform(pattern, BlockingConfig(bT=3, bS=(64,)))
        loads = [c for c in plan.inner.calls if c.kind == "LOAD"]
        assert len(loads) == plan.rotation_period
        assert plan.inner.loop_step == plan.rotation_period


def test_inner_phase_store_plane_offset(j2d5pt):
    # Fig. 5: with bT = 4, rad = 1 the store lags the load by 4 planes.
    plan = an5d_transform(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    loads = [c for c in plan.inner.calls if c.kind == "LOAD"]
    stores = [c for c in plan.inner.calls if c.kind == "STORE"]
    assert len(stores) == len(loads)
    for load, store in zip(loads, stores):
        assert load.plane - store.plane == 4


def test_pipeline_dependency_rule(j2d9pt):
    # CALC of time step T at load j computes plane j - T*rad.
    scheduler = PipelineScheduler(j2d9pt, BlockingConfig(bT=3, bS=(64,)))
    calls = scheduler.calls_for_load(12)
    for call in calls:
        if call.kind == "CALC":
            assert call.plane == 12 - call.time_step * j2d9pt.radius
        if call.kind == "STORE":
            assert call.plane == 12 - 3 * j2d9pt.radius


def test_calc_args_reference_previous_time_step_group(j2d5pt):
    scheduler = PipelineScheduler(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    calls = scheduler.calls_for_load(10)
    for call in calls:
        if call.kind == "CALC":
            dest, *sources = call.args
            assert dest.startswith(f"reg_{call.time_step}_")
            assert all(s.startswith(f"reg_{call.time_step - 1}_") for s in sources)
            assert len(sources) == 2 * j2d5pt.radius + 1


def test_store_args_use_final_group(j2d5pt):
    plan = an5d_transform(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    stores = [c for c in plan.all_calls() if c.kind == "STORE"]
    assert stores
    for store in stores:
        assert all(arg.startswith("reg_3_") for arg in store.args)


def test_macro_call_plane_rendering(j2d5pt):
    plan = an5d_transform(j2d5pt, BlockingConfig(bT=4, bS=(64,)))
    relative = [c for c in plan.inner.calls if c.plane_is_relative]
    assert relative
    sample = relative[-1]
    rendered = sample.render_plane("i")
    assert "i" in rendered


def test_plan_smem_fields_follow_optimizations(j2d5pt, gradient2d):
    star_plan = an5d_transform(j2d5pt, BlockingConfig(bT=2, bS=(64,)))
    assert star_plan.use_star_opt and star_plan.smem_planes_per_buffer == 1
    general_plan = an5d_transform(
        gradient2d, BlockingConfig(bT=2, bS=(64,), star_opt=False, associative_opt=False)
    )
    assert general_plan.smem_planes_per_buffer == 3


def test_transform_validates_configuration(star3d1r):
    with pytest.raises(Exception):
        an5d_transform(star3d1r, BlockingConfig(bT=2, bS=(64,)))
