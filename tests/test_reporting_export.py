"""Tests for the ResultTable export additions (JSONL, records, None cells)."""

import json

import pytest

from repro.reporting import ResultTable


def sample_table():
    table = ResultTable("sample", ["pattern", "gpu", "hS", "gflops"])
    table.add_row("j2d5pt", "V100", 512, 100.5)
    table.add_row("j2d9pt", "V100", None, 90.0)
    return table


def test_to_jsonl_one_object_per_row_in_header_order():
    lines = sample_table().to_jsonl().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert list(first) == ["pattern", "gpu", "hS", "gflops"]
    assert json.loads(lines[1])["hS"] is None


def test_from_records_infers_stable_column_order():
    records = [
        {"pattern": "a", "gflops": 1.0},
        {"pattern": "b", "extra": 7},
    ]
    table = ResultTable.from_records("t", records)
    assert table.headers == ["pattern", "gflops", "extra"]
    assert table.rows[0] == ("a", 1.0, None)  # missing keys become None
    assert table.rows[1] == ("b", None, 7)


def test_from_records_explicit_headers_select_and_order():
    records = [{"b": 2, "a": 1, "c": 3}]
    table = ResultTable.from_records("t", records, headers=("c", "a"))
    assert table.headers == ["c", "a"]
    assert table.rows == [(3, 1)]


def test_from_records_round_trips_to_records():
    table = sample_table()
    rebuilt = ResultTable.from_records(table.title, table.to_records())
    assert rebuilt.headers == list(table.headers)
    assert rebuilt.rows == table.rows


def test_csv_renders_none_as_empty_cell():
    csv_text = sample_table().to_csv()
    assert "None" not in csv_text
    assert csv_text.splitlines()[2] == "j2d9pt,V100,,90.0"


def test_text_and_markdown_render_none_as_dash():
    table = sample_table()
    assert "None" not in table.to_text()
    assert "None" not in table.to_markdown()
    assert "| j2d9pt | V100 | - | 90.0 |" in table.to_markdown()


def test_save_jsonl(tmp_path):
    path = sample_table().save(tmp_path / "out.jsonl")
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["pattern"] == "j2d5pt"


def test_save_rejects_unknown_suffix(tmp_path):
    with pytest.raises(ValueError):
        sample_table().save(tmp_path / "out.xlsx")
