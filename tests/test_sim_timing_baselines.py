"""Tests for the timing simulator and the baseline framework models."""

import math

import pytest

from repro.baselines import HybridTilingBaseline, LoopTilingBaseline, StencilGenBaseline
from repro.core.config import BlockingConfig, sconf_configuration
from repro.ir.stencil import GridSpec
from repro.sim.device import SimulatedGPU
from repro.sim.memory import (
    kernel_launch_overhead_seconds,
    sustained_global_bandwidth,
    sustained_shared_bandwidth,
    synchronization_cost_seconds,
)
from repro.sim.timing import TimingSimulator, simulate_performance
from repro.stencils.library import load_pattern


# -- memory curves ---------------------------------------------------------------


def test_sustained_bandwidth_zero_at_zero_occupancy(v100):
    assert sustained_global_bandwidth(v100, "float", 0.0) == 0.0
    assert sustained_shared_bandwidth(v100, "float", 0.0) == 0.0


def test_sustained_bandwidth_saturates(v100):
    assert sustained_global_bandwidth(v100, "float", 1.0) == pytest.approx(791.0)
    assert sustained_shared_bandwidth(v100, "float", 1.0) <= 10650.0


def test_sustained_bandwidth_monotone_in_occupancy(v100):
    values = [sustained_shared_bandwidth(v100, "float", occ) for occ in (0.1, 0.3, 0.6, 1.0)]
    assert values == sorted(values)


def test_shared_efficiency_applied(v100, p100):
    full_v = sustained_shared_bandwidth(v100, "float", 1.0)
    full_p = sustained_shared_bandwidth(p100, "float", 1.0)
    assert full_v / v100.measured_smembw("float") > full_p / p100.measured_smembw("float")


def test_overhead_helpers():
    assert kernel_launch_overhead_seconds(100) == pytest.approx(5e-4)
    assert synchronization_cost_seconds(SimulatedGPU.from_name("V100").spec, 10, 0, 1) == 0.0
    assert synchronization_cost_seconds(SimulatedGPU.from_name("V100").spec, 10, 160, 1) > 0.0


def test_division_penalty_only_for_double(j2d5pt):
    device = SimulatedGPU.from_name("V100")
    assert device.division_penalty("float", True) == 1.0
    assert device.division_penalty("double", True) > 1.0
    assert device.division_penalty("double", False) == 1.0


# -- timing simulator -------------------------------------------------------------------


def test_simulator_accepts_name_spec_or_device(j2d5pt, v100, eval_2d_grid):
    config = BlockingConfig(bT=4, bS=(256,))
    by_name = TimingSimulator("V100").simulate(j2d5pt, eval_2d_grid, config)
    by_spec = TimingSimulator(v100).simulate(j2d5pt, eval_2d_grid, config)
    by_device = TimingSimulator(SimulatedGPU(v100)).simulate(j2d5pt, eval_2d_grid, config)
    assert by_name.gflops == by_spec.gflops == by_device.gflops


def test_simulated_below_model_prediction(j2d5pt, v100, eval_2d_grid):
    """The simulator reproduces the model-accuracy gap (Section 7.2)."""
    from repro.model.roofline import predict_performance

    config = BlockingConfig(bT=10, bS=(256,), hS=512, register_limit=64)
    predicted = predict_performance(j2d5pt, eval_2d_grid, config, v100)
    measured = simulate_performance(j2d5pt, eval_2d_grid, config, v100)
    assert measured.gflops < predicted.gflops
    assert measured.gflops > 0.3 * predicted.gflops


def test_v100_faster_than_p100(j2d5pt, eval_2d_grid):
    config = BlockingConfig(bT=8, bS=(256,), register_limit=64)
    v = simulate_performance(j2d5pt, eval_2d_grid, config, "V100")
    p = simulate_performance(j2d5pt, eval_2d_grid, config, "P100")
    assert v.gflops > p.gflops


def test_model_accuracy_lower_on_p100(j2d5pt, eval_2d_grid):
    """Section 7.2: the model over-predicts more on P100 than on V100."""
    from repro.model.roofline import predict_performance
    from repro.model.gpu_specs import get_gpu

    config = BlockingConfig(bT=8, bS=(256,), hS=512, register_limit=64)
    acc = {}
    for gpu in ("V100", "P100"):
        predicted = predict_performance(j2d5pt, eval_2d_grid, config, get_gpu(gpu))
        measured = simulate_performance(j2d5pt, eval_2d_grid, config, gpu)
        acc[gpu] = measured.gflops / predicted.gflops
    assert acc["P100"] < acc["V100"]


def test_double_precision_division_slowdown(eval_2d_grid):
    """Section 7.1: j* stencils slow down disproportionately in double precision."""
    config = BlockingConfig(bT=8, bS=(256,), hS=512, register_limit=64)
    j2d5pt_d = load_pattern("j2d5pt", "double")
    star_d = load_pattern("star2d1r", "double")
    jac = simulate_performance(j2d5pt_d, eval_2d_grid, config, "V100")
    star = simulate_performance(star_d, eval_2d_grid, config, "V100")
    # Same shape and radius, but the division stencil is much slower.
    assert jac.gflops < 0.75 * star.gflops


def test_temporal_blocking_scaling_shape_2d(eval_2d_grid):
    """Fig. 8 (2D star, float): performance rises with bT and peaks near 8-12."""
    pattern = load_pattern("star2d1r", "float")
    gflops = {}
    for bT in (1, 2, 4, 8, 10, 12, 16):
        config = BlockingConfig(bT=bT, bS=(256,), register_limit=96)
        gflops[bT] = simulate_performance(pattern, eval_2d_grid, config, "V100").gflops
    assert gflops[4] > gflops[1]
    assert gflops[8] > gflops[2]
    peak_bt = max(gflops, key=gflops.get)
    assert 6 <= peak_bt <= 14
    assert gflops[16] <= gflops[peak_bt]


def test_temporal_blocking_scaling_shape_3d(eval_3d_grid):
    """Fig. 8 (3D star, float): performance peaks at a lower bT than 2D."""
    pattern = load_pattern("star3d1r", "float")
    gflops = {}
    for bT in (1, 2, 3, 4, 6, 8):
        config = BlockingConfig(bT=bT, bS=(32, 32), register_limit=96)
        gflops[bT] = simulate_performance(pattern, eval_3d_grid, config, "V100").gflops
    peak_bt = max(gflops, key=gflops.get)
    assert 2 <= peak_bt <= 6
    assert gflops[peak_bt] > gflops[1]


def test_unlaunchable_configuration_reports_zero(eval_3d_grid):
    pattern = load_pattern("box3d4r", "double")
    # 32x32 threads with radius-4 double-precision general stencil: the
    # shared-memory footprint alone exceeds what an SM can hold.
    config = BlockingConfig(bT=1, bS=(32, 32), star_opt=False, associative_opt=False)
    measurement = simulate_performance(pattern, eval_3d_grid, config, "P100")
    assert measurement.gflops == 0.0 or measurement.occupancy > 0.0


def test_measurement_row_fields(j2d5pt, eval_2d_grid):
    measurement = simulate_performance(j2d5pt, eval_2d_grid, BlockingConfig(bT=4, bS=(256,)), "V100")
    row = measurement.as_row()
    assert set(row) == {"time_s", "gflops", "gcells", "occupancy", "registers", "bottleneck"}
    assert row["time_s"] > 0


# -- baselines ---------------------------------------------------------------------------


def test_fig6_framework_ordering_2d(j2d5pt, eval_2d_grid, v100):
    loop = LoopTilingBaseline(v100).simulate(j2d5pt, eval_2d_grid)
    hybrid = HybridTilingBaseline(v100).simulate(j2d5pt, eval_2d_grid)
    stencilgen = StencilGenBaseline(v100).simulate(j2d5pt, eval_2d_grid)
    an5d = simulate_performance(j2d5pt, eval_2d_grid, sconf_configuration(j2d5pt), v100)
    assert loop.gflops < hybrid.gflops
    assert loop.gflops < stencilgen.gflops
    assert stencilgen.gflops < 1.25 * an5d.gflops  # AN5D Sconf competitive or better


def test_fig6_hybrid_weak_for_3d(star3d1r, eval_3d_grid, v100):
    hybrid = HybridTilingBaseline(v100).simulate(star3d1r, eval_3d_grid)
    stencilgen = StencilGenBaseline(v100).simulate(star3d1r, eval_3d_grid)
    assert hybrid.gflops < stencilgen.gflops


def test_loop_tiling_is_global_memory_bound(j2d5pt, eval_2d_grid, v100):
    result = LoopTilingBaseline(v100).simulate(j2d5pt, eval_2d_grid)
    assert "no temporal blocking" in result.notes
    # An upper bound: flops/cell * BW / (2 * word) with perfect efficiency.
    bound = 10 * 791 / 8
    assert result.gflops < bound


def test_stencilgen_caps_temporal_blocking(j2d5pt, eval_2d_grid, v100):
    baseline = StencilGenBaseline(v100)
    high_bt = baseline.simulate(j2d5pt, eval_2d_grid, BlockingConfig(bT=10, bS=(128,), hS=128))
    default = baseline.simulate(j2d5pt, eval_2d_grid)
    # bT is clamped to 4, so asking for 10 cannot beat the default by much.
    assert high_bt.gflops <= default.gflops * 1.05


def test_stencilgen_occupancy_limited_by_multibuffering(box2d1r, v100):
    baseline = StencilGenBaseline(v100)
    blocks_low, _, _ = baseline.occupancy(box2d1r, BlockingConfig(bT=2, bS=(128,)))
    blocks_high, _, factor = baseline.occupancy(box2d1r, BlockingConfig(bT=4, bS=(512,)))
    assert blocks_low >= blocks_high


def test_stencilgen_registers_exceed_an5d(j2d5pt, eval_2d_grid, v100):
    from repro.model.registers import estimate_registers

    config = sconf_configuration(j2d5pt)
    result = StencilGenBaseline(v100).simulate(j2d5pt, eval_2d_grid, config)
    assert result.registers_per_thread > estimate_registers(j2d5pt, config)


def test_hybrid_tile_fits_shared_memory(j2d5pt, v100):
    baseline = HybridTilingBaseline(v100)
    cells = baseline.tile_cells(j2d5pt)
    assert cells * 2 * j2d5pt.word_bytes <= v100.shared_memory_per_sm_bytes // 2


def test_baseline_result_rows(j2d5pt, eval_2d_grid, v100):
    for baseline in (LoopTilingBaseline(v100), HybridTilingBaseline(v100), StencilGenBaseline(v100)):
        row = baseline.simulate(j2d5pt, eval_2d_grid).as_row()
        assert row["gflops"] > 0
        assert row["framework"]


def test_baselines_from_name_constructor():
    assert StencilGenBaseline.from_name("V100").gpu.sm_count == 80
    assert HybridTilingBaseline.from_name("P100").gpu.sm_count == 56
    assert LoopTilingBaseline.from_name("v100").gpu.sm_count == 80
