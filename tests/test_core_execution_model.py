"""Tests for the N.5D execution model (Section 4.1 geometry)."""

import math

import pytest

from repro.core.config import BlockingConfig, ConfigurationError
from repro.core.execution_model import ExecutionModel, ThreadCategory
from repro.ir.stencil import GridSpec


def make_model(pattern, interior, bT=4, bS=(64,), hS=None, time_steps=100):
    config = BlockingConfig(bT=bT, bS=bS, hS=hS)
    return ExecutionModel(pattern, GridSpec(interior, time_steps), config)


def test_paper_ntb_formula(j2d5pt):
    # ntb = prod(ceil(IS_i / (bS_i - 2*bT*rad)))
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,))
    assert model.ntb == math.ceil(512 / (64 - 8))
    model3 = make_model(j2d5pt, (512, 500), bT=4, bS=(64,))
    assert model3.ntb == math.ceil(500 / 56)


def test_ntb_for_3d(star3d1r):
    model = make_model(star3d1r, (128, 96, 96), bT=2, bS=(32, 32))
    per_dim = model.blocks_per_dimension()
    assert per_dim == (math.ceil(96 / 28), math.ceil(96 / 28))
    assert model.ntb == per_dim[0] * per_dim[1]


def test_stream_division_block_count(j2d5pt):
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,), hS=128)
    assert model.num_stream_blocks == 4
    assert model.total_thread_blocks == 4 * model.ntb


def test_stream_overlap_formula(j2d5pt, j2d9pt):
    # 2 * sum_{T=0}^{bT-1} rad*(bT-T)
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,), hS=128)
    assert model.stream_overlap_subplanes() == 2 * (4 + 3 + 2 + 1)
    model2 = make_model(j2d9pt, (512, 512), bT=2, bS=(64,), hS=128)
    assert model2.stream_overlap_subplanes() == 2 * 2 * (2 + 1)


def test_total_streamed_subplanes_without_division(j2d5pt):
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,), hS=None)
    assert model.total_streamed_subplanes() == 512 + 2


def test_total_streamed_subplanes_with_division(j2d5pt):
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,), hS=128)
    assert model.total_streamed_subplanes() == 512 + 2 + 3 * model.stream_overlap_subplanes()


def test_subplanes_per_stream_block(j2d5pt):
    undivided = make_model(j2d5pt, (512, 512), bT=4, bS=(64,), hS=None)
    assert undivided.subplanes_per_stream_block() == 512 + 2
    divided = make_model(j2d5pt, (512, 512), bT=4, bS=(64,), hS=128)
    assert divided.subplanes_per_stream_block() == 128 + 2 + divided.stream_overlap_subplanes()


def test_valid_region_shrinks_with_time_step(j2d5pt):
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,))
    assert model.valid_region_at_step(0) == (64,)
    assert model.valid_region_at_step(1) == (62,)
    assert model.valid_region_at_step(4) == (56,)
    with pytest.raises(ValueError):
        model.valid_region_at_step(5)


def test_category_counts_cover_all_positions(j2d5pt):
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,))
    counts = model.thread_category_counts()
    total = sum(counts.values())
    assert total == model.ntb * model.nthr


def test_valid_threads_cover_grid_exactly(j2d5pt, star3d1r):
    model = make_model(j2d5pt, (500, 500), bT=4, bS=(64,))
    counts = model.thread_category_counts()
    assert counts[ThreadCategory.VALID] == 500

    model3 = make_model(star3d1r, (64, 60, 60), bT=2, bS=(32, 32))
    counts3 = model3.thread_category_counts()
    assert counts3[ThreadCategory.VALID] == 60 * 60


def test_boundary_threads_present_for_edge_blocks(j2d5pt):
    model = make_model(j2d5pt, (512, 512), bT=4, bS=(64,))
    counts = model.thread_category_counts()
    assert counts[ThreadCategory.BOUNDARY] >= 2


def test_redundant_fraction_grows_with_bt(j2d5pt):
    low = make_model(j2d5pt, (512, 512), bT=1, bS=(64,)).redundant_compute_fraction()
    high = make_model(j2d5pt, (512, 512), bT=8, bS=(64,)).redundant_compute_fraction()
    assert high > low


def test_redundant_fraction_shrinks_with_block_size(j2d5pt):
    small = make_model(j2d5pt, (4096, 4096), bT=4, bS=(64,)).redundant_compute_fraction()
    large = make_model(j2d5pt, (4096, 4096), bT=4, bS=(512,)).redundant_compute_fraction()
    assert large < small


def test_blocks_enumeration_matches_ntb(j2d5pt, star3d1r):
    model = make_model(j2d5pt, (300, 300), bT=2, bS=(64,))
    blocks = model.blocks()
    assert len(blocks) == model.ntb
    # Compute regions tile the grid without gaps.
    covered = sum(b.compute_size[0] for b in blocks)
    assert covered == 300

    model3 = make_model(star3d1r, (32, 70, 70), bT=2, bS=(32, 32))
    assert len(model3.blocks()) == model3.ntb


def test_block_geometry_origins(j2d5pt):
    model = make_model(j2d5pt, (300, 300), bT=2, bS=(64,))
    first = model.blocks()[0]
    assert first.origin == (0,)
    assert first.load_origin == (-2,)
    assert first.block_size == (64,)


def test_stream_ranges_cover_extent(j2d5pt):
    model = make_model(j2d5pt, (500, 500), bT=4, bS=(64,), hS=128)
    ranges = model.stream_ranges()
    assert ranges[0] == (0, 128)
    assert ranges[-1][1] == 500
    assert sum(stop - start for start, stop in ranges) == 500


def test_grid_dimension_mismatch_rejected(j2d5pt):
    with pytest.raises(ConfigurationError):
        ExecutionModel(j2d5pt, GridSpec((64, 64, 64), 10), BlockingConfig(bT=2, bS=(32,)))


def test_summary_contains_key_fields(j2d5pt):
    summary = make_model(j2d5pt, (512, 512), bT=4, bS=(64,)).summary()
    for key in ("nthr", "ntb", "halo_per_side", "redundant_fraction", "threads_valid"):
        assert key in summary
