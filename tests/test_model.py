"""Tests for the performance model (GPU specs, threads, traffic, registers,
occupancy, roofline)."""

import math

import pytest

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.model.gpu_specs import GPUS, get_gpu
from repro.model.occupancy import occupancy_for, paper_sm_efficiency
from repro.model.registers import (
    effective_registers,
    estimate_registers,
    register_pressure_ok,
    spill_penalty,
    stencilgen_registers,
)
from repro.model.roofline import predict_performance
from repro.model.threads import count_thread_work
from repro.model.traffic import compute_traffic, shared_memory_access_per_thread
from repro.stencils.generators import box_stencil, star_stencil
from repro.stencils.library import load_pattern


# -- GPU specs (Table 4) -----------------------------------------------------


def test_table4_v100_values(v100):
    assert v100.peak_gflops("float") == 15700
    assert v100.peak_gflops("double") == 7850
    assert v100.peak_membw_gbs == 900
    assert v100.measured_membw("float") == 791
    assert v100.measured_smembw("double") == 12750
    assert v100.sm_count == 80


def test_table4_p100_values(p100):
    assert p100.peak_gflops("float") == 10600
    assert p100.measured_membw("double") == 540
    assert p100.measured_smembw("float") == 9700
    assert p100.sm_count == 56


def test_gpu_lookup_aliases():
    assert get_gpu("v100").name == get_gpu("Tesla V100").name
    assert get_gpu("pascal").sm_count == 56
    with pytest.raises(KeyError):
        get_gpu("A100")


def test_p100_shared_efficiency_below_v100(v100, p100):
    # Section 7.2: P100 sustains less than half of V100's effective shared
    # memory bandwidth for the same kernels.
    assert p100.shared_efficiency("float") < 0.6 * v100.shared_efficiency("float")


def test_registry_has_both_devices():
    assert set(GPUS) == {"V100", "P100"}


# -- Table 2: shared memory accesses per thread --------------------------------


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_table2_2d_star(radius):
    access = shared_memory_access_per_thread(star_stencil(2, radius))
    assert access.reads_expected == 2 * radius
    assert access.reads_practical == 2 * radius
    assert access.writes == 1


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_table2_3d_star(radius):
    access = shared_memory_access_per_thread(star_stencil(3, radius))
    assert access.reads_expected == 4 * radius
    assert access.reads_practical == 4 * radius


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_table2_2d_box(radius):
    access = shared_memory_access_per_thread(box_stencil(2, radius))
    column = 2 * radius + 1
    assert access.reads_expected == column**2 - column
    assert access.reads_practical == column - 1
    assert access.writes == 1


@pytest.mark.parametrize("radius", [1, 2])
def test_table2_3d_box(radius):
    access = shared_memory_access_per_thread(box_stencil(3, radius))
    column = 2 * radius + 1
    assert access.reads_expected == column**3 - column
    assert access.reads_practical == column**2 - 1


# -- thread work ------------------------------------------------------------------


def test_thread_work_launch_count(j2d5pt):
    grid = GridSpec((512, 512), 100)
    work = count_thread_work(j2d5pt, grid, BlockingConfig(bT=4, bS=(64,)))
    assert work.launches == 25
    work_uneven = count_thread_work(j2d5pt, grid, BlockingConfig(bT=7, bS=(64,)))
    assert work_uneven.launches == math.ceil(100 / 7)


def test_thread_work_writes_only_valid_cells(j2d5pt):
    grid = GridSpec((512, 512), 100)
    work = count_thread_work(j2d5pt, grid, BlockingConfig(bT=4, bS=(64,)))
    assert work.gm_write == 512 * 512 * 25  # one store per cell per launch


def test_thread_work_reads_include_redundancy(j2d5pt):
    grid = GridSpec((512, 512), 100)
    work = count_thread_work(j2d5pt, grid, BlockingConfig(bT=4, bS=(64,)))
    assert work.gm_read > work.gm_write


def test_compute_scales_with_time_steps(j2d5pt):
    grid_a = GridSpec((512, 512), 100)
    grid_b = GridSpec((512, 512), 200)
    config = BlockingConfig(bT=4, bS=(64,))
    a = count_thread_work(j2d5pt, grid_a, config).compute
    b = count_thread_work(j2d5pt, grid_b, config).compute
    assert b == pytest.approx(2 * a, rel=0.01)


# -- traffic ------------------------------------------------------------------------


def test_global_traffic_drops_with_bt(j2d5pt):
    grid = GridSpec((4096, 4096), 96)
    low = compute_traffic(j2d5pt, grid, BlockingConfig(bT=1, bS=(256,)))
    high = compute_traffic(j2d5pt, grid, BlockingConfig(bT=8, bS=(256,)))
    assert high.global_bytes < 0.25 * low.global_bytes


def test_useful_flops_independent_of_blocking(j2d5pt):
    grid = GridSpec((1024, 1024), 64)
    a = compute_traffic(j2d5pt, grid, BlockingConfig(bT=1, bS=(128,)))
    b = compute_traffic(j2d5pt, grid, BlockingConfig(bT=8, bS=(256,)))
    assert a.useful_flops == b.useful_flops


def test_total_flops_exceed_useful_flops(j2d5pt):
    grid = GridSpec((1024, 1024), 64)
    traffic = compute_traffic(j2d5pt, grid, BlockingConfig(bT=8, bS=(128,)))
    assert traffic.total_flops > traffic.useful_flops


def test_double_precision_doubles_traffic():
    single = load_pattern("star2d1r", "float")
    double = load_pattern("star2d1r", "double")
    grid = GridSpec((1024, 1024), 32)
    config = BlockingConfig(bT=4, bS=(128,))
    a = compute_traffic(single, grid, config)
    b = compute_traffic(double, grid, config)
    assert b.global_bytes == pytest.approx(2 * a.global_bytes)
    assert b.shared_bytes == pytest.approx(2 * a.shared_bytes)


def test_arithmetic_intensity_grows_with_bt(j2d5pt):
    grid = GridSpec((4096, 4096), 96)
    low = compute_traffic(j2d5pt, grid, BlockingConfig(bT=1, bS=(256,)))
    high = compute_traffic(j2d5pt, grid, BlockingConfig(bT=8, bS=(256,)))
    assert high.arithmetic_intensity > low.arithmetic_intensity


# -- registers (Section 6.3 formula, Fig. 7) ------------------------------------------


def test_register_formula_float(j2d5pt):
    config = BlockingConfig(bT=4, bS=(128,))
    assert estimate_registers(j2d5pt, config) == 4 * 3 + 4 + 20


def test_register_formula_double():
    pattern = load_pattern("j2d5pt", "double")
    config = BlockingConfig(bT=4, bS=(128,))
    assert estimate_registers(pattern, config) == 2 * 4 * 3 + 4 + 30


def test_stencilgen_uses_more_registers(j2d5pt, j2d9pt):
    config = BlockingConfig(bT=4, bS=(128,))
    assert stencilgen_registers(j2d5pt, config) > estimate_registers(j2d5pt, config)
    assert stencilgen_registers(j2d9pt, config) > estimate_registers(j2d9pt, config)


def test_fig7_spilling_behaviour(j2d9pt):
    """At the 32-register cap AN5D does not spill but STENCILGEN does for
    second-order stencils (Fig. 7)."""
    config = BlockingConfig(bT=4, bS=(128,), register_limit=32)
    an5d = effective_registers(j2d9pt, config, "an5d")
    stencilgen = effective_registers(j2d9pt, config, "stencilgen")
    assert not an5d.spilled
    assert stencilgen.spilled


def test_register_pressure_pruning(j2d9pt, v100):
    ok = BlockingConfig(bT=4, bS=(128,))
    # Double precision at high bT and wide blocks exceeds the 64K registers
    # per SM budget and must be pruned (Section 6.3).
    double_pattern = load_pattern("j2d9pt", "double")
    too_big = BlockingConfig(bT=16, bS=(512,))
    assert register_pressure_ok(j2d9pt, ok, v100)
    assert not register_pressure_ok(double_pattern, too_big, v100)


def test_spill_penalty_monotone(j2d9pt):
    # A cap below the simultaneously-live registers forces spilling.
    config = BlockingConfig(bT=8, bS=(128,), register_limit=24)
    estimate = effective_registers(j2d9pt, config)
    demand = estimate_registers(j2d9pt, config)
    assert estimate.spilled
    assert spill_penalty(estimate, demand) > 1.0
    no_limit = effective_registers(j2d9pt, BlockingConfig(bT=8, bS=(128,)))
    assert spill_penalty(no_limit, demand) == 1.0


# -- occupancy --------------------------------------------------------------------------


def test_paper_sm_efficiency_quantisation(v100):
    # 2048/256 = 8 blocks per group: 16 blocks -> 2 full groups -> 1.0
    assert paper_sm_efficiency(16, 256, v100) == 1.0
    # 12 blocks -> floor 1 / ceil 2 = 0.5
    assert paper_sm_efficiency(12, 256, v100) == 0.5
    # fewer blocks than one group -> filled fraction
    assert paper_sm_efficiency(4, 256, v100) == pytest.approx(0.5)


def test_occupancy_limited_by_registers_at_high_bt(j2d5pt, v100):
    grid = GridSpec((16384, 16384), 1000)
    low = occupancy_for(j2d5pt, grid, BlockingConfig(bT=2, bS=(256,)), v100)
    high = occupancy_for(j2d5pt, grid, BlockingConfig(bT=16, bS=(256,)), v100)
    assert high.occupancy <= low.occupancy
    assert high.limiting_factor in ("registers", "threads")


def test_occupancy_full_for_small_blocks(j2d5pt, v100):
    grid = GridSpec((16384, 16384), 1000)
    result = occupancy_for(j2d5pt, grid, BlockingConfig(bT=1, bS=(128,)), v100)
    assert result.occupancy == 1.0
    assert result.is_fully_occupied


def test_occupancy_wave_efficiency_bounded(j2d5pt, v100):
    grid = GridSpec((2048, 2048), 8)
    result = occupancy_for(j2d5pt, grid, BlockingConfig(bT=4, bS=(256,)), v100)
    assert 0.0 < result.wave_efficiency <= 1.0


# -- roofline ---------------------------------------------------------------------------


def test_roofline_bottleneck_is_shared_memory_for_high_bt(j2d5pt, v100, eval_2d_grid):
    prediction = predict_performance(j2d5pt, eval_2d_grid, BlockingConfig(bT=10, bS=(256,)), v100)
    assert prediction.bottleneck == "shared_memory"


def test_roofline_bottleneck_global_for_bt1(j2d5pt, v100, eval_2d_grid):
    prediction = predict_performance(j2d5pt, eval_2d_grid, BlockingConfig(bT=1, bS=(256,)), v100)
    assert prediction.bottleneck == "global_memory"


def test_roofline_time_is_max_over_efficiency(j2d5pt, v100, eval_2d_grid):
    prediction = predict_performance(j2d5pt, eval_2d_grid, BlockingConfig(bT=8, bS=(256,)), v100)
    slowest = max(
        prediction.time_compute_s, prediction.time_global_s, prediction.time_shared_s
    )
    assert prediction.time_s == pytest.approx(slowest / prediction.sm_efficiency)


def test_roofline_prediction_close_to_paper_table5(j2d5pt, v100, eval_2d_grid):
    """Table 5: j2d5pt / V100 / float, bT=10, bS=256, hS=256 -> 8,144 GFLOP/s."""
    config = BlockingConfig(bT=10, bS=(256,), hS=256)
    prediction = predict_performance(j2d5pt, eval_2d_grid, config, v100)
    assert prediction.gflops == pytest.approx(8144, rel=0.25)


def test_roofline_3d_prediction_magnitude(star3d1r, v100, eval_3d_grid):
    """Table 5: star3d1r / V100 / float, bT=4, 32x32 -> 3,498 GFLOP/s."""
    config = BlockingConfig(bT=4, bS=(32, 32), hS=128)
    prediction = predict_performance(star3d1r, eval_3d_grid, config, v100)
    assert prediction.gflops == pytest.approx(3498, rel=0.35)


def test_roofline_scales_with_gpu(j2d5pt, v100, p100, eval_2d_grid):
    config = BlockingConfig(bT=8, bS=(256,))
    fast = predict_performance(j2d5pt, eval_2d_grid, config, v100)
    slow = predict_performance(j2d5pt, eval_2d_grid, config, p100)
    assert fast.gflops > slow.gflops


def test_gcells_consistent_with_gflops(j2d5pt, v100, eval_2d_grid):
    from repro.ir.flops import flops_per_cell

    prediction = predict_performance(j2d5pt, eval_2d_grid, BlockingConfig(bT=8, bS=(256,)), v100)
    assert prediction.gflops == pytest.approx(
        prediction.gcells * flops_per_cell(j2d5pt.expr), rel=1e-6
    )
