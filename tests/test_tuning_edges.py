"""Edge-case coverage for ``tuning/pruning.py`` and ``tuning/search_space.py``.

These modules were previously only exercised through the autotuner; this file
pins down their behaviour on the boundaries: 1-D patterns (which have no
blocked spatial dimension at all), degenerate grids and block sizes, and
configurations sitting exactly on the register-limit pruning thresholds.
"""

import pytest

from repro.core.config import BlockingConfig
from repro.ir.expr import BinOp, GridRead
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import get_gpu
from repro.model.registers import estimate_registers, register_pressure_ok
from repro.stencils.library import load_pattern
from repro.tuning.autotuner import AutoTuner
from repro.tuning.pruning import prune_configurations, pruning_statistics
from repro.tuning.search_space import (
    REGISTER_LIMITS,
    SearchSpace,
    default_search_space,
    sconf_space,
)

V100 = get_gpu("V100")


def make_1d_pattern(dtype: str = "float") -> StencilPattern:
    """A three-point 1-D Jacobi stencil (no blocked spatial dimension)."""
    expr = BinOp(
        "+",
        BinOp("+", GridRead("A", (-1,)), GridRead("A", (0,))),
        GridRead("A", (1,)),
    )
    return StencilPattern(name="j1d3pt", ndim=1, expr=expr, dtype=dtype)


# -- search space shape ---------------------------------------------------------------


def test_default_search_space_sizes_match_paper():
    assert default_search_space(load_pattern("j2d5pt")).size() == 16 * 3 * 3
    assert default_search_space(load_pattern("j3d27pt")).size() == 8 * 4 * 2


def test_search_space_configurations_count_matches_size():
    space = default_search_space(load_pattern("j2d5pt"))
    configs = list(space.configurations())
    assert len(configs) == space.size()
    assert len(set(configs)) == len(configs)
    # Register limits multiply the enumeration only when asked for.
    with_limits = list(space.configurations(include_register_limits=True))
    assert len(with_limits) == space.size() * len(REGISTER_LIMITS)


def test_sconf_space_is_a_single_point():
    assert sconf_space(load_pattern("j2d5pt")).size() == 1
    assert sconf_space(load_pattern("j3d27pt")).size() == 1


def test_empty_search_space_dimensions():
    space = SearchSpace(time_blocks=(), spatial_blocks=((128,),), stream_blocks=(256,))
    assert space.size() == 0
    assert list(space.configurations()) == []


# -- 1-D patterns ---------------------------------------------------------------------


def test_one_dimensional_pattern_has_no_valid_configuration():
    # A 1-D stencil has ndim - 1 = 0 blocked dimensions, but every
    # BlockingConfig carries at least one spatial block: nothing survives.
    pattern = make_1d_pattern()
    space = default_search_space(pattern)  # falls through to the 3D space
    survivors = prune_configurations(pattern, space.configurations(), V100)
    assert survivors == []
    stats = pruning_statistics(pattern, space.configurations(), V100)
    assert stats["kept"] == 0
    assert stats["invalid"] + stats["register_pruned"] == stats["total"]


def test_autotuner_raises_cleanly_for_one_dimensional_pattern():
    pattern = make_1d_pattern()
    with pytest.raises(ValueError, match="no valid configuration"):
        AutoTuner("V100").tune(pattern, GridSpec((1024,), 10))


# -- degenerate grids and blocks ------------------------------------------------------


def test_degenerate_block_leaves_no_compute_region():
    # bS = 2*bT*radius exactly: the halo eats the whole block.
    pattern = load_pattern("j2d5pt")  # radius 1
    boundary = BlockingConfig(bT=4, bS=(8,))
    assert boundary.compute_region(pattern.radius) == (0,)
    assert prune_configurations(pattern, [boundary], V100) == []
    # One cell more survives structural pruning.
    survivor = BlockingConfig(bT=4, bS=(9,))
    assert prune_configurations(pattern, [survivor], V100) == [survivor]


def test_thread_block_limit_prunes_oversized_blocks():
    pattern = load_pattern("j3d27pt")
    oversized = BlockingConfig(bT=1, bS=(64, 32))  # 2048 threads > 1024
    stats = pruning_statistics(pattern, [oversized], V100)
    assert stats == {"total": 1, "invalid": 1, "register_pruned": 0, "kept": 0}


def test_high_order_pattern_prunes_high_bt():
    # radius-4 2D stencil: bT=16 needs bS > 128, so (128,) is invalid.
    pattern = load_pattern("star2d4r")
    space = default_search_space(pattern)
    survivors = prune_configurations(pattern, space.configurations(), V100)
    assert survivors  # something must survive
    assert all(c.bS[0] - 2 * c.bT * pattern.radius > 0 for c in survivors)


def test_pruning_on_tiny_grid_is_grid_independent():
    # Pruning is structural: it never looks at the grid, so the same
    # configurations survive for a degenerate 1x1 grid as for the paper's.
    pattern = load_pattern("j2d5pt")
    space = default_search_space(pattern)
    survivors = prune_configurations(pattern, space.configurations(), V100)
    tuned = AutoTuner("V100", top_k=1).tune(pattern, GridSpec((1, 1), 1))
    assert tuned.pruned_to == len(survivors)


# -- register-limit boundaries --------------------------------------------------------


def test_register_pruning_per_thread_boundary():
    # float demand = bT*(2*rad+1) + bT + 20; find the exact bT crossing 255.
    pattern = load_pattern("j2d5pt")  # radius 1 -> demand = 4*bT + 20
    # bS=256 keeps the per-SM total (252 * 256 = 64512) inside the 64K file,
    # so only the per-thread rule is in play.
    at_limit = BlockingConfig(bT=58, bS=(256,))  # 58*4 + 20 = 252 <= 255
    over_limit = BlockingConfig(bT=59, bS=(256,))  # 59*4 + 20 = 256 > 255
    assert estimate_registers(pattern, at_limit) <= V100.max_registers_per_thread
    assert estimate_registers(pattern, over_limit) > V100.max_registers_per_thread
    assert register_pressure_ok(pattern, at_limit, V100)
    assert not register_pressure_ok(pattern, over_limit, V100)


def test_register_pruning_per_sm_boundary():
    # Per-SM limit: demand * nthr <= 65536. With bS=(1024,) (nthr=1024) the
    # budget is 64 registers per thread: bT=10 -> 60 ok, bT=11 -> 64... the
    # float demand 4*bT + 20 crosses 64 exactly at bT=11.
    pattern = load_pattern("j2d5pt")
    ok = BlockingConfig(bT=10, bS=(1024,))  # 60 * 1024 = 61440 <= 65536
    boundary = BlockingConfig(bT=11, bS=(1024,))  # 64 * 1024 = 65536 <= limit
    over = BlockingConfig(bT=12, bS=(1024,))  # 68 * 1024 > 65536
    assert register_pressure_ok(pattern, ok, V100)
    assert register_pressure_ok(pattern, boundary, V100)
    assert not register_pressure_ok(pattern, over, V100)


def test_double_precision_prunes_harder_than_float():
    float_pattern = load_pattern("j2d9pt", "float")
    double_pattern = load_pattern("j2d9pt", "double")
    space = default_search_space(float_pattern)
    float_kept = pruning_statistics(float_pattern, space.configurations(), V100)["kept"]
    double_kept = pruning_statistics(double_pattern, space.configurations(), V100)["kept"]
    assert double_kept <= float_kept


def test_pruning_statistics_partition_is_exact():
    for name in ("j2d5pt", "star2d4r", "j3d27pt", "box3d2r"):
        pattern = load_pattern(name)
        space = default_search_space(pattern)
        stats = pruning_statistics(pattern, space.configurations(), V100)
        assert stats["total"] == space.size()
        assert stats["invalid"] + stats["register_pruned"] + stats["kept"] == stats["total"]
        survivors = prune_configurations(pattern, space.configurations(), V100)
        assert len(survivors) == stats["kept"]
