"""Tests for stencil shape and algebraic classification."""

import pytest

from repro.ir.classify import (
    StencilShape,
    access_set_is_symmetric,
    classify_shape,
    group_terms_by_subplane,
    is_associative,
    is_diagonal_access_free,
    sum_terms,
    uses_division,
    uses_sqrt,
)
from repro.ir.expr import BinOp, Call, Const, GridRead, UnaryOp, evaluate
from repro.stencils.generators import box_offsets, box_stencil, star_offsets, star_stencil


def test_star_offsets_classify_as_star():
    assert classify_shape(star_offsets(2, 1)) is StencilShape.STAR
    assert classify_shape(star_offsets(3, 4)) is StencilShape.STAR


def test_box_offsets_classify_as_box():
    assert classify_shape(box_offsets(2, 1)) is StencilShape.BOX
    assert classify_shape(box_offsets(3, 2)) is StencilShape.BOX


def test_partial_box_is_general():
    offsets = [o for o in box_offsets(2, 1) if o != (1, 1)]
    assert classify_shape(offsets) is StencilShape.GENERAL


def test_single_point_is_star():
    assert classify_shape([(0, 0)]) is StencilShape.STAR


def test_empty_offsets_rejected():
    with pytest.raises(ValueError):
        classify_shape([])


def test_diagonal_access_free_matches_star():
    assert is_diagonal_access_free(star_offsets(2, 3))
    assert not is_diagonal_access_free(box_offsets(2, 1))


def test_uses_division_and_sqrt(j2d5pt, gradient2d, box2d1r):
    assert uses_division(j2d5pt.expr)
    assert uses_sqrt(gradient2d.expr)
    assert not uses_division(box2d1r.expr)
    assert not uses_sqrt(box2d1r.expr)


def test_synthetic_stencils_are_associative():
    assert is_associative(star_stencil(2, 1).expr)
    assert is_associative(box_stencil(2, 2).expr)
    assert is_associative(box_stencil(3, 1).expr)


def test_jacobi_with_constant_division_is_associative(j2d5pt, j3d27pt):
    assert is_associative(j2d5pt.expr)
    assert is_associative(j3d27pt.expr)


def test_gradient_is_not_associative(gradient2d):
    assert not is_associative(gradient2d.expr)


def test_sum_terms_distributes_constant_division():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (1, 0))
    expr = BinOp("/", BinOp("+", a, b), Const(4.0))
    terms = sum_terms(expr)
    assert terms is not None and len(terms) == 2
    total = sum(evaluate(t, lambda r: 2.0) for t in terms)
    assert total == pytest.approx(evaluate(expr, lambda r: 2.0))


def test_sum_terms_handles_subtraction_signs():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (1, 0))
    expr = BinOp("-", a, b)
    terms = sum_terms(expr)
    assert terms is not None and len(terms) == 2
    total = sum(evaluate(t, lambda r: 3.0 if r.offset == (0, 0) else 1.0) for t in terms)
    assert total == pytest.approx(2.0)


def test_sum_terms_rejects_non_sum():
    a = GridRead("A", (0, 0))
    expr = Call("sqrt", (a,))
    assert is_associative(expr) is False


def test_group_terms_by_subplane_covers_all_offsets(box2d1r):
    groups = group_terms_by_subplane(box2d1r.expr)
    assert groups is not None
    assert sorted(groups) == [-1, 0, 1]
    assert sum(len(terms) for terms in groups.values()) == 9


def test_group_terms_returns_none_for_non_associative(gradient2d):
    assert group_terms_by_subplane(gradient2d.expr) is None


def test_access_set_symmetry():
    assert access_set_is_symmetric(star_offsets(2, 2))
    assert access_set_is_symmetric(box_offsets(3, 1))
    assert not access_set_is_symmetric([(0, 0), (1, 0)])


def test_pure_constant_expression_not_associative():
    assert not is_associative(Const(1.0))


def test_negated_terms_still_single_read():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (0, 1))
    expr = BinOp("-", BinOp("*", Const(2.0), a), BinOp("*", Const(3.0), b))
    assert is_associative(expr)


def test_product_of_reads_is_not_associative():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (0, 1))
    assert not is_associative(BinOp("*", a, b))
