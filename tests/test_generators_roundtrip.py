"""Seeded round-trip property tests: generated C -> frontend -> IR bit-equal.

Every generator family emits C source the frontend must lower back to an IR
bit-equal to the directly-built pattern — same expression tree, same
dimensionality, same array, same dtype.  This is the property the fuzz
campaigns rely on: the generated program and the in-memory pattern are two
encodings of the same stencil, so any divergence downstream is a real bug,
not a frontend/generator mismatch.
"""

import sys

import pytest

from repro.frontend.stencil_detect import StencilDetectionError, parse_stencil
from repro.stencils.generators import (
    anisotropic_star_stencil,
    anisotropic_star_stencil_source,
    box_stencil,
    box_stencil_source,
    fdtd_stencil,
    fdtd_stencil_source,
    fuzz_name,
    fuzz_stencil,
    parse_fuzz_name,
    star_stencil,
    star_stencil_source,
    variable_star_stencil,
    variable_star_stencil_source,
)


def _assert_bit_equal(direct, parsed):
    # Structural equality of a k-term stencil recurses through k nested
    # BinOp frames; box3d at high radius (9^3 terms) needs more stack than
    # pytest's instrumented frames leave under the default limit.
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 10_000))
    try:
        assert parsed.expr == direct.expr
        assert parsed.ndim == direct.ndim
        assert parsed.array == direct.array
        assert parsed.dtype == direct.dtype
    finally:
        sys.setrecursionlimit(limit)


@pytest.mark.parametrize("dtype", ("float", "double"))
@pytest.mark.parametrize("ndim,radius", [(2, 1), (2, 4), (2, 8), (3, 3), (3, 8)])
def test_star_round_trip(ndim, radius, dtype):
    direct = star_stencil(ndim, radius, dtype)
    parsed = parse_stencil(star_stencil_source(ndim, radius, dtype)).pattern
    _assert_bit_equal(direct, parsed)


@pytest.mark.parametrize("dtype", ("float", "double"))
@pytest.mark.parametrize("ndim,radius", [(2, 1), (2, 6), (3, 2), (3, 4)])
def test_box_round_trip(ndim, radius, dtype):
    direct = box_stencil(ndim, radius, dtype)
    parsed = parse_stencil(box_stencil_source(ndim, radius, dtype)).pattern
    _assert_bit_equal(direct, parsed)


@pytest.mark.parametrize("radii", [(1, 3), (3, 1), (2, 1, 1), (1, 2, 3)])
def test_anisotropic_star_round_trip(radii):
    direct = anisotropic_star_stencil(radii)
    parsed = parse_stencil(anisotropic_star_stencil_source(radii)).pattern
    _assert_bit_equal(direct, parsed)


@pytest.mark.parametrize("ndim,radius,seed", [(2, 1, 3), (2, 3, 99), (3, 2, 7)])
def test_variable_star_round_trip(ndim, radius, seed):
    direct = variable_star_stencil(ndim, radius, seed)
    parsed = parse_stencil(variable_star_stencil_source(ndim, radius, seed)).pattern
    _assert_bit_equal(direct, parsed)


@pytest.mark.parametrize("dtype", ("float", "double"))
@pytest.mark.parametrize("ndim", (2, 3))
def test_fdtd_round_trip(ndim, dtype):
    direct = fdtd_stencil(ndim, dtype)
    parsed = parse_stencil(fdtd_stencil_source(ndim, dtype)).pattern
    _assert_bit_equal(direct, parsed)
    # dtype is inferred from the source alone (f suffixes / declared floats),
    # with no override passed to the frontend.
    assert parsed.dtype == dtype


@pytest.mark.parametrize("seed", (0, 7))
@pytest.mark.parametrize("index", range(8))
def test_fuzz_round_trip(seed, index):
    stencil = fuzz_stencil(seed, index)
    direct = stencil.build_pattern()
    parsed = parse_stencil(stencil.source, name=stencil.name).pattern
    _assert_bit_equal(direct, parsed)


def test_fuzz_stencils_are_deterministic():
    assert fuzz_stencil(7, 3) == fuzz_stencil(7, 3)
    assert fuzz_stencil(7, 3) != fuzz_stencil(8, 3)
    assert parse_fuzz_name(fuzz_name(7, 3)) == (7, 3)
    assert parse_fuzz_name("star2d1r") is None


# -- multi-statement frontend ----------------------------------------------------

_FDTD_2D_TEMPLATE = """\
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
    {{
{body}
    }}
"""


def _fdtd_2d(body: str) -> str:
    return _FDTD_2D_TEMPLATE.format(body=body)


def test_temporaries_may_reference_earlier_temporaries():
    source = _fdtd_2d(
        "      float lap = A[t%2][i-1][j] - 2.0f * A[t%2][i][j] + A[t%2][i+1][j];\n"
        "      float scaled = 0.25f * lap;\n"
        "      A[(t+1)%2][i][j] = A[t%2][i][j] + scaled;"
    )
    pattern = parse_stencil(source).pattern
    assert pattern.ndim == 2
    assert pattern.dtype == "float"
    assert len(pattern.offsets) == 3


def test_uninitialised_temporary_is_rejected():
    source = _fdtd_2d(
        "      float lap;\n"
        "      A[(t+1)%2][i][j] = A[t%2][i][j];"
    )
    with pytest.raises(StencilDetectionError, match="must be initialised"):
        parse_stencil(source)


def test_duplicate_temporary_is_rejected():
    source = _fdtd_2d(
        "      float lap = 2.0f * A[t%2][i][j];\n"
        "      float lap = 3.0f * A[t%2][i][j];\n"
        "      A[(t+1)%2][i][j] = lap;"
    )
    with pytest.raises(StencilDetectionError, match="declared twice"):
        parse_stencil(source)


def test_temporary_shadowing_loop_variable_is_rejected():
    source = _fdtd_2d(
        "      float i = 2.0f * A[t%2][i][j];\n"
        "      A[(t+1)%2][i][j] = A[t%2][i][j];"
    )
    with pytest.raises(StencilDetectionError, match="shadows a loop variable"):
        parse_stencil(source)


def test_undeclared_identifier_is_still_rejected():
    source = _fdtd_2d(
        "      A[(t+1)%2][i][j] = alpha * A[t%2][i][j];"
    )
    with pytest.raises(StencilDetectionError, match="free scalar variable"):
        parse_stencil(source)


def test_statement_after_assignment_is_rejected():
    source = _fdtd_2d(
        "      A[(t+1)%2][i][j] = A[t%2][i][j];\n"
        "      float lap = 2.0f * A[t%2][i][j];"
    )
    with pytest.raises(StencilDetectionError, match="single assignment"):
        parse_stencil(source)


def test_float_temporary_forces_float_dtype():
    source = _fdtd_2d(
        "      float lap = A[t%2][i-1][j] - 2.0 * A[t%2][i][j] + A[t%2][i+1][j];\n"
        "      A[(t+1)%2][i][j] = A[t%2][i][j] + 0.25 * lap;"
    )
    assert parse_stencil(source).pattern.dtype == "float"


def test_double_temporaries_keep_double_dtype():
    source = _fdtd_2d(
        "      double lap = A[t%2][i-1][j] - 2.0 * A[t%2][i][j] + A[t%2][i+1][j];\n"
        "      A[(t+1)%2][i][j] = A[t%2][i][j] + 0.25 * lap;"
    )
    assert parse_stencil(source).pattern.dtype == "double"
