"""Correctness tests: the blocked N.5D schedule vs the naive reference.

These are the most important tests in the repository — they establish that
AN5D's overlapped space/time blocking (halos, streaming division, remainder
launches) computes exactly what the original stencil loop computes.
"""

import numpy as np
import pytest

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.sim.executor import BlockedStencilExecutor, run_blocked, verify_blocking
from repro.stencils.library import load_pattern
from repro.stencils.reference import make_initial_grid, run_reference


def check(pattern_name, interior, time_steps, dtype="float", **config_kwargs):
    pattern = load_pattern(pattern_name, dtype)
    grid = GridSpec(interior, time_steps)
    config = BlockingConfig(**config_kwargs)
    result = verify_blocking(pattern, grid, config)
    assert result.matches, (
        f"{pattern_name} {config.describe()}: max relative error {result.max_relative_error}"
    )


# -- 2D stencils ---------------------------------------------------------------


def test_j2d5pt_basic_blocking():
    check("j2d5pt", (72, 72), 9, bT=3, bS=(32,))


def test_j2d5pt_high_degree_temporal_blocking():
    check("j2d5pt", (96, 96), 20, bT=10, bS=(64,))


def test_j2d5pt_with_stream_division():
    check("j2d5pt", (80, 80), 8, bT=4, bS=(32,), hS=24)


def test_j2d5pt_time_steps_not_multiple_of_bt():
    check("j2d5pt", (64, 64), 11, bT=4, bS=(32,))


def test_j2d5pt_single_time_step():
    check("j2d5pt", (48, 48), 1, bT=4, bS=(32,))


def test_j2d5pt_double_precision():
    check("j2d5pt", (64, 64), 10, dtype="double", bT=5, bS=(32,))


def test_j2d9pt_second_order():
    check("j2d9pt", (72, 72), 8, bT=3, bS=(48,))


def test_j2d9pt_gol_box():
    check("j2d9pt-gol", (64, 64), 9, bT=3, bS=(32,))


def test_gradient2d_nonlinear():
    check("gradient2d", (64, 64), 6, bT=3, bS=(32,))


def test_star2d4r_high_order():
    check("star2d4r", (80, 80), 6, bT=2, bS=(48,))


def test_box2d2r():
    check("box2d2r", (64, 64), 6, bT=2, bS=(40,))


def test_grid_not_multiple_of_block():
    check("j2d5pt", (70, 58), 8, bT=4, bS=(32,))


def test_tiny_grid_single_block():
    check("j2d5pt", (24, 24), 6, bT=3, bS=(32,))


# -- 3D stencils -----------------------------------------------------------------


def test_star3d1r_blocking():
    check("star3d1r", (20, 36, 36), 6, bT=2, bS=(16, 16))


def test_star3d2r_blocking():
    check("star3d2r", (16, 40, 40), 4, bT=2, bS=(24, 24))


def test_j3d27pt_blocking():
    check("j3d27pt", (16, 32, 32), 6, bT=3, bS=(24, 24))


def test_box3d1r_with_stream_division():
    check("box3d1r", (24, 32, 32), 4, bT=2, bS=(16, 16), hS=12)


def test_3d_uneven_grid():
    check("star3d1r", (18, 30, 26), 5, bT=2, bS=(16, 16))


# -- executor mechanics -------------------------------------------------------------


def test_launch_schedule_remainder():
    pattern = load_pattern("j2d5pt")
    executor = BlockedStencilExecutor(pattern, GridSpec((48, 48), 11), BlockingConfig(bT=4, bS=(32,)))
    assert executor.launch_schedule(11) == [4, 4, 3]
    assert executor.launch_schedule(8) == [4, 4]
    assert executor.launch_schedule(0) == []


def test_tiles_cover_store_region_exactly():
    pattern = load_pattern("j2d5pt")
    grid = GridSpec((70, 70), 4)
    executor = BlockedStencilExecutor(pattern, grid, BlockingConfig(bT=2, bS=(32,), hS=20))
    stored = np.zeros(grid.padded(pattern.radius), dtype=bool)
    for tile in executor.tiles(2):
        slices = tuple(slice(lo, hi) for lo, hi in tile.store)
        assert not stored[slices].any(), "store regions must not overlap"
        stored[slices] = True
    interior = tuple(slice(1, -1) for _ in range(2))
    assert stored[interior].all(), "store regions must cover the interior"
    assert not stored[0, :].any() and not stored[:, 0].any(), "boundary ring is never stored"


def test_tile_loads_are_clipped_to_padded_array():
    pattern = load_pattern("j2d5pt")
    grid = GridSpec((64, 64), 4)
    executor = BlockedStencilExecutor(pattern, grid, BlockingConfig(bT=4, bS=(32,)))
    padded = grid.padded(pattern.radius)
    for tile in executor.tiles(4):
        for (lo, hi), dim in zip(tile.load, padded):
            assert 0 <= lo <= hi <= dim


def test_boundary_ring_is_preserved():
    pattern = load_pattern("j2d5pt")
    grid = GridSpec((48, 48), 6)
    initial = make_initial_grid(pattern, grid, seed=3)
    blocked = run_blocked(pattern, grid, BlockingConfig(bT=3, bS=(32,)), initial=initial.copy())
    assert np.array_equal(blocked[0, :], initial[0, :])
    assert np.array_equal(blocked[:, -1], initial[:, -1])


def test_blocked_result_differs_from_initial():
    pattern = load_pattern("j2d5pt")
    grid = GridSpec((48, 48), 6)
    initial = make_initial_grid(pattern, grid, seed=3)
    blocked = run_blocked(pattern, grid, BlockingConfig(bT=3, bS=(32,)), initial=initial.copy())
    assert not np.allclose(blocked, initial)


def test_invalid_configuration_rejected():
    pattern = load_pattern("j2d5pt")
    with pytest.raises(Exception):
        BlockedStencilExecutor(pattern, GridSpec((48, 48), 4), BlockingConfig(bT=20, bS=(32,)))


def test_verification_reports_error_magnitude():
    pattern = load_pattern("j2d5pt")
    result = verify_blocking(pattern, GridSpec((48, 48), 6), BlockingConfig(bT=3, bS=(32,)))
    assert result.matches
    assert result.max_relative_error < 1e-5
    assert bool(result)


def test_different_seeds_give_different_grids():
    pattern = load_pattern("j2d5pt")
    grid = GridSpec((32, 32), 2)
    a = make_initial_grid(pattern, grid, seed=0)
    b = make_initial_grid(pattern, grid, seed=1)
    assert not np.allclose(a, b)


def test_reference_and_blocked_share_dtype():
    pattern = load_pattern("j2d5pt", "double")
    grid = GridSpec((32, 32), 3)
    blocked = run_blocked(pattern, grid, BlockingConfig(bT=3, bS=(24,)))
    reference = run_reference(pattern, grid)
    assert blocked.dtype == reference.dtype == np.float64
