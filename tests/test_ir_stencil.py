"""Tests for StencilPattern and GridSpec."""

import pytest

from repro.ir.classify import StencilShape
from repro.ir.expr import BinOp, Const, GridRead
from repro.ir.stencil import GridSpec, StencilPattern
from repro.stencils.generators import box_stencil, star_stencil


def test_grid_spec_basic_properties():
    grid = GridSpec((128, 64), 10)
    assert grid.ndim == 2
    assert grid.cells == 128 * 64
    assert grid.padded(2) == (132, 68)


def test_grid_spec_rejects_nonpositive_dims():
    with pytest.raises(ValueError):
        GridSpec((0, 4))
    with pytest.raises(ValueError):
        GridSpec((4, -1))


def test_grid_spec_rejects_negative_time():
    with pytest.raises(ValueError):
        GridSpec((4, 4), -1)


def test_pattern_radius_from_offsets(j2d5pt, j2d9pt):
    assert j2d5pt.radius == 1
    assert j2d9pt.radius == 2


def test_pattern_offsets_are_sorted_and_unique(box2d1r):
    offsets = box2d1r.offsets
    assert offsets == sorted(set(offsets))
    assert len(offsets) == 9


def test_pattern_shape_classification(j2d5pt, box2d1r, gradient2d):
    assert j2d5pt.shape is StencilShape.STAR
    assert box2d1r.shape is StencilShape.BOX
    assert gradient2d.is_star


def test_pattern_dtype_word_sizes():
    pattern = star_stencil(2, 1, dtype="float")
    assert pattern.word_bytes == 4 and pattern.nword == 1
    pattern = star_stencil(2, 1, dtype="double")
    assert pattern.word_bytes == 8 and pattern.nword == 2


def test_pattern_rejects_bad_dtype():
    with pytest.raises(ValueError):
        StencilPattern("x", 2, GridRead("A", (0, 0)), dtype="half")


def test_pattern_rejects_dimension_mismatch():
    with pytest.raises(ValueError):
        StencilPattern("x", 3, GridRead("A", (0, 0)))


def test_pattern_rejects_no_reads():
    with pytest.raises(ValueError):
        StencilPattern("x", 2, Const(1.0))


def test_pattern_rejects_future_time_reads():
    with pytest.raises(ValueError):
        StencilPattern("x", 2, GridRead("A", (0, 0), time_offset=1))


def test_accesses_counts_and_flags(box2d1r):
    accesses = {a.offset: a for a in box2d1r.accesses}
    assert accesses[(0, 0)].is_center
    assert accesses[(1, 0)].is_axis_aligned
    assert not accesses[(1, 1)].is_axis_aligned
    assert all(a.count == 1 for a in box2d1r.accesses)


def test_streaming_offsets(star3d1r, j2d9pt):
    assert star3d1r.streaming_offsets == [-1, 0, 1]
    assert j2d9pt.streaming_offsets == [-2, -1, 0, 1, 2]


def test_offsets_on_subplane(box2d1r):
    assert box2d1r.offsets_on_subplane(0) == [(0, -1), (0, 0), (0, 1)]
    assert len(box2d1r.offsets_on_subplane(1)) == 3


def test_describe_mentions_key_facts(j2d5pt):
    text = j2d5pt.describe()
    assert "j2d5pt" in text and "2D" in text and "star" in text and "radius 1" in text


def test_diagonal_access_free_flag(j2d5pt, box2d1r):
    assert j2d5pt.diagonal_access_free
    assert not box2d1r.diagonal_access_free


def test_associative_flag(box2d1r, gradient2d):
    assert box2d1r.associative
    assert not gradient2d.associative


def test_synthetic_generator_rejects_bad_arguments():
    with pytest.raises(ValueError):
        star_stencil(4, 1)
    with pytest.raises(ValueError):
        box_stencil(2, 0)
