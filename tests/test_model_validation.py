"""Tests for the model-accuracy reporting of Section 7.2."""

import pytest

from repro.ir.stencil import GridSpec
from repro.model.validation import AccuracyEntry, AccuracyReport, accuracy_report

GRID_2D = GridSpec((8192, 8192), 120)
GRID_3D = GridSpec((512, 512, 512), 120)
SAMPLE = ("j2d5pt", "star2d1r", "box2d1r", "star3d1r")


@pytest.fixture(scope="module")
def v100_report():
    return accuracy_report("V100", "float", SAMPLE, grid_2d=GRID_2D, grid_3d=GRID_3D)


def test_report_contains_all_requested_stencils(v100_report):
    assert [entry.stencil for entry in v100_report.entries] == list(SAMPLE)
    assert v100_report.gpu.startswith("Tesla V100")


def test_accuracy_values_in_unit_interval(v100_report):
    for entry in v100_report.entries:
        assert 0.0 < entry.accuracy <= 1.0


def test_mean_between_min_and_max(v100_report):
    assert v100_report.min_accuracy <= v100_report.mean_accuracy <= v100_report.max_accuracy


def test_v100_mean_accuracy_in_paper_ballpark(v100_report):
    # Paper: 67 % average on V100 (float + double, all stencils); the float
    # subset here lands in a generous band around that.
    assert 0.4 <= v100_report.mean_accuracy <= 0.95


def test_p100_accuracy_lower_than_v100(v100_report):
    p100 = accuracy_report("P100", "float", SAMPLE, grid_2d=GRID_2D, grid_3d=GRID_3D)
    assert p100.mean_accuracy < v100_report.mean_accuracy


def test_division_exclusion_for_double_precision():
    report = accuracy_report(
        "V100", "double", ("j2d5pt", "star2d1r"), grid_2d=GRID_2D, grid_3d=GRID_3D
    )
    # Excluding the division stencil must not lower the average (Section 7.2).
    assert report.mean_accuracy_excluding_division >= report.mean_accuracy


def test_summary_mentions_device_and_percentages(v100_report):
    text = v100_report.summary()
    assert "Tesla V100" in text and "%" in text


def test_empty_report_statistics():
    empty = AccuracyReport("X", "float", [])
    assert empty.mean_accuracy == 0.0
    assert empty.min_accuracy == 0.0 and empty.max_accuracy == 0.0


def test_accuracy_entry_zero_model_guard():
    entry = AccuracyEntry("x", "float", 10.0, 0.0, False)
    assert entry.accuracy == 0.0
