"""Tests for the campaign service: store, jobs, scheduler, reports, CLI."""

import json

import pytest

from repro import api
from repro.campaign import (
    CampaignScheduler,
    CampaignSpec,
    JobSpec,
    ResultStore,
    run_job,
)
from repro.campaign.jobs import JOB_KINDS
from repro.campaign.report import (
    accuracy_summary,
    campaign_summary,
    leaderboard,
    table5_matrix,
)
from repro.campaign.scheduler import JobTimeout, _execute_with_timeout
from repro.cli import main

SMALL_2D = (512, 512)
SMALL_3D = (48, 48, 48)


def small_spec(**overrides):
    defaults = dict(
        benchmarks=("j2d5pt", "star3d1r"),
        gpus=("V100",),
        dtypes=("float",),
        kinds=("tune",),
        time_steps=100,
        interior_2d=SMALL_2D,
        interior_3d=SMALL_3D,
        top_k=2,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# -- JobSpec ------------------------------------------------------------------------


def test_job_key_is_deterministic_and_content_addressed():
    a = JobSpec("tune", "j2d5pt", "V100", "float", (512, 512), 100, (("top_k", 2),))
    b = JobSpec("tune", "j2d5pt", "V100", "float", (512, 512), 100, (("top_k", 2),))
    assert a.key() == b.key()
    assert a.key() != b.key(code_version="0.0.0")
    assert a.key() != JobSpec("tune", "j2d5pt", "P100", "float", (512, 512), 100).key()
    assert a.key() != JobSpec("tune", "j2d5pt", "V100", "double", (512, 512), 100).key()


def test_job_params_order_is_irrelevant():
    a = JobSpec("verify", "j2d5pt", "V100", "float", (96, 96), 8, (("bT", 4), ("bS", (32,))))
    b = JobSpec("verify", "j2d5pt", "V100", "float", (96, 96), 8, (("bS", [32]), ("bT", 4)))
    assert a.key() == b.key()


def test_job_rejects_unknown_kind():
    with pytest.raises(ValueError):
        JobSpec("frobnicate", "j2d5pt", "V100", "float", (96, 96), 8)


def test_run_job_covers_every_kind():
    jobs = {
        "tune": JobSpec("tune", "j2d5pt", "V100", "float", SMALL_2D, 50, (("top_k", 1),)),
        "exhaustive": JobSpec("exhaustive", "j2d5pt", "V100", "float", SMALL_2D, 50),
        "verify": JobSpec(
            "verify", "j2d5pt", "V100", "float", (96, 96), 8, (("bT", 3), ("bS", (32,)))
        ),
        "baseline": JobSpec(
            "baseline", "j2d5pt", "V100", "float", SMALL_2D, 50, (("framework", "loop"),)
        ),
        "predict": JobSpec(
            "predict", "j2d5pt", "V100", "float", SMALL_2D, 50, (("bT", 4), ("bS", (256,)))
        ),
        "fuzz": JobSpec("fuzz", "fuzz-1-0", "V100", "float", (96, 96), 8),
    }
    assert set(jobs) == set(JOB_KINDS)
    for kind, spec in jobs.items():
        payload = run_job(spec)
        assert json.loads(json.dumps(payload)) == payload, kind
    assert run_job(jobs["verify"])["matches"] is True
    assert run_job(jobs["tune"])["tuned_gflops"] > 0
    assert run_job(jobs["fuzz"])["passed"] is True


# -- CampaignSpec expansion -----------------------------------------------------------


def test_campaign_expansion_matrix():
    spec = small_spec(gpus=("V100", "P100"), dtypes=("float", "double"))
    jobs = spec.expand()
    assert len(jobs) == 2 * 2 * 2  # benchmarks x gpus x dtypes
    assert len({job.key() for job in jobs}) == len(jobs)
    # Expansion order is deterministic.
    assert [j.key() for j in spec.expand()] == [j.key() for j in jobs]


def test_campaign_defaults_to_all_benchmarks():
    from repro.stencils.library import BENCHMARKS

    spec = CampaignSpec()
    assert spec.benchmarks == tuple(BENCHMARKS)


def test_campaign_expansion_verify_uses_small_grids():
    spec = small_spec(kinds=("verify",))
    for job in spec.expand():
        assert job.time_steps == 8
        assert max(job.interior) <= 96


def test_campaign_baseline_expands_frameworks():
    spec = small_spec(kinds=("baseline",), benchmarks=("j2d5pt",))
    frameworks = {job.params_dict()["framework"] for job in spec.expand()}
    assert frameworks == {"loop", "hybrid", "stencilgen"}


def test_campaign_spec_validates_inputs():
    with pytest.raises(KeyError):
        small_spec(benchmarks=("nope",))
    with pytest.raises(KeyError):
        small_spec(gpus=("H100",))
    with pytest.raises(ValueError):
        small_spec(dtypes=("half",))
    with pytest.raises(ValueError):
        small_spec(kinds=("train",))


# -- ResultStore ----------------------------------------------------------------------


def test_store_round_trip(tmp_path):
    job = JobSpec("tune", "j2d5pt", "V100", "float", SMALL_2D, 100)
    with ResultStore(tmp_path / "store.sqlite") as store:
        key = store.put(job, {"tuned_gflops": 123.4}, elapsed_s=0.5)
        assert key == job.key()
        assert key in store
        stored = store.get(key)
        assert stored.ok and stored.payload["tuned_gflops"] == 123.4
        assert store.lookup(job).key == key
        assert store.count() == 1
    # Persistence across connections.
    with ResultStore(tmp_path / "store.sqlite") as store:
        assert store.has_ok(job)


def test_store_failed_results_are_not_cache_hits(tmp_path):
    job = JobSpec("tune", "j2d5pt", "V100", "float", SMALL_2D, 100)
    with ResultStore(":memory:") as store:
        store.put(job, {"error": "boom"}, status="failed")
        assert job.key() in store
        assert not store.has_ok(job)
        assert store.status_counts() == {"failed": 1}
        # A later success overwrites the failure under the same key.
        store.put(job, {"tuned_gflops": 1.0}, status="ok")
        assert store.has_ok(job)
        assert store.count() == 1


def test_store_export_is_sorted_and_timestamp_free(tmp_path):
    with ResultStore(":memory:") as store:
        for name in ("j2d9pt", "j2d5pt"):
            store.put(
                JobSpec("tune", name, "V100", "float", SMALL_2D, 100), {"tuned_gflops": 1.0}
            )
        records = store.export_records()
        assert [r["pattern"] for r in records] == ["j2d5pt", "j2d9pt"]
        assert all("created_at" not in r and "elapsed_s" not in r for r in records)
        path = store.export_jsonl(tmp_path / "out.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2 and json.loads(lines[0])["pattern"] == "j2d5pt"


# -- Scheduler ------------------------------------------------------------------------


def test_campaign_run_then_full_cache_hit():
    spec = small_spec()
    with ResultStore(":memory:") as store:
        first = CampaignScheduler(spec, store).run()
        assert first.ok and first.executed == 2 and first.cached == 0
        second = CampaignScheduler(spec, store).run()
        assert second.executed == 0 and second.cached == second.total
        assert second.cache_hit_rate >= 0.95  # acceptance criterion (it is 1.0)


def test_interrupted_campaign_resumes_and_exports_identically(tmp_path):
    spec = small_spec(kinds=("tune", "baseline"))
    # Uninterrupted reference run.
    with ResultStore(tmp_path / "full.sqlite") as store:
        CampaignScheduler(spec, store).run()
        reference = (tmp_path / "full.jsonl")
        store.export_jsonl(reference)
    # "Killed" run: half the jobs committed, then the process is gone.
    with ResultStore(tmp_path / "resumed.sqlite") as store:
        jobs = spec.expand()
        for job in jobs[: len(jobs) // 2]:
            store.put(job, run_job(job))
    # Resume in a fresh connection ("new process").
    with ResultStore(tmp_path / "resumed.sqlite") as store:
        outcome = CampaignScheduler(spec, store).run()
        assert outcome.cached == len(spec.expand()) // 2
        resumed = tmp_path / "resumed.jsonl"
        store.export_jsonl(resumed)
    assert resumed.read_bytes() == reference.read_bytes()


def test_scheduler_shards_partition_the_campaign():
    spec = small_spec(gpus=("V100", "P100"), kinds=("verify",))
    with ResultStore(":memory:") as store:
        shards = 3
        seen = []
        for index in range(shards):
            scheduler = CampaignScheduler(spec, store, shards=shards, shard_index=index)
            seen.extend(job.key() for job in scheduler.jobs())
        all_jobs = [job.key() for job in spec.expand()]
        assert sorted(seen) == sorted(all_jobs)  # disjoint and complete


def test_scheduler_retries_and_records_failures(monkeypatch):
    import repro.campaign.scheduler as scheduler_module

    attempts = {"n": 0}

    def flaky(spec, timeout):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("transient failure")
        return {"tuned_gflops": 1.0}

    monkeypatch.setattr(scheduler_module, "_execute_with_timeout", flaky)
    spec = small_spec(benchmarks=("j2d5pt",))
    with ResultStore(":memory:") as store:
        outcome = CampaignScheduler(spec, store, retries=2).run()
        assert outcome.ok and outcome.retried == 1
        assert store.status_counts() == {"ok": 1}


def test_scheduler_exhausted_retries_surface_failure(monkeypatch):
    import repro.campaign.scheduler as scheduler_module

    def always_broken(spec, timeout):
        raise RuntimeError("permanent failure")

    monkeypatch.setattr(scheduler_module, "_execute_with_timeout", always_broken)
    spec = small_spec(benchmarks=("j2d5pt",))
    with ResultStore(":memory:") as store:
        outcome = CampaignScheduler(spec, store, retries=1).run()
        assert not outcome.ok and outcome.failed == 1 and outcome.retried == 1
        stored = store.query(status="failed")
        assert len(stored) == 1
        assert "permanent failure" in stored[0].payload["error"]


def test_scheduler_parallel_matches_serial(tmp_path):
    spec = small_spec(gpus=("V100", "P100"))
    with ResultStore(tmp_path / "serial.sqlite") as store:
        CampaignScheduler(spec, store, workers=1).run()
        serial = store.export_records()
    with ResultStore(tmp_path / "parallel.sqlite") as store:
        outcome = CampaignScheduler(spec, store, workers=4).run()
        assert outcome.ok
        parallel = store.export_records()
    assert serial == parallel


def test_job_timeout_enforced():
    import time

    slow = JobSpec("tune", "j2d5pt", "V100", "float", SMALL_2D, 100)
    original_sleep = time.sleep
    with pytest.raises(JobTimeout):
        import repro.campaign.scheduler as scheduler_module

        def sleepy(spec):
            original_sleep(1.0)
            return {}

        previous = scheduler_module.run_job
        scheduler_module.run_job = sleepy
        try:
            _execute_with_timeout(slow, timeout=0.05)
        finally:
            scheduler_module.run_job = previous


def test_scheduler_validates_shard_arguments():
    spec = small_spec()
    with ResultStore(":memory:") as store:
        with pytest.raises(ValueError):
            CampaignScheduler(spec, store, shards=0)
        with pytest.raises(ValueError):
            CampaignScheduler(spec, store, shards=2, shard_index=2)
        with pytest.raises(ValueError):
            CampaignScheduler(spec, store, retries=-1)


# -- Reports --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tuned_store():
    spec = small_spec(gpus=("V100", "P100"))
    store = ResultStore(":memory:")
    CampaignScheduler(spec, store).run()
    yield store
    store.close()


def test_leaderboard_ranks_by_gflops(tuned_store):
    table = leaderboard(tuned_store, top=3)
    values = [row[4] for row in table.rows]
    assert values == sorted(values, reverse=True)
    assert len(table.rows) == 3


def test_table5_matrix_shape(tuned_store):
    table = table5_matrix(tuned_store)
    assert table.headers == ["pattern", "P100/float", "V100/float"]
    assert [row[0] for row in table.rows] == ["j2d5pt", "star3d1r"]
    config_table = table5_matrix(tuned_store, value="config")
    assert "bT=" in config_table.rows[0][1]


def test_accuracy_summary_bounds(tuned_store):
    table = accuracy_summary(tuned_store)
    assert len(table.rows) == 2  # one per GPU
    for row in table.rows:
        assert 0.0 < row[3] <= 1.0  # mean accuracy


def test_campaign_summary_counts(tuned_store):
    table = campaign_summary(tuned_store)
    assert table.rows == [("tune", "ok", 4)]


def test_api_campaign_report_unknown_report(tmp_path):
    with pytest.raises(ValueError):
        api.campaign_report(tmp_path / "x.sqlite", report="nope")


# -- api.campaign ---------------------------------------------------------------------


def test_api_campaign_runs_and_resumes(tmp_path):
    store_path = tmp_path / "api.sqlite"
    kwargs = dict(
        benchmarks=("j2d5pt",),
        gpus=("V100",),
        dtypes=("float", "double"),
        store=store_path,
        time_steps=100,
    )
    first = api.campaign(**kwargs)
    assert first.ok and first.executed == 2
    second = api.campaign(**kwargs)
    assert second.cached == 2 and second.cache_hit_rate == 1.0
    table = api.campaign_report(store_path, report="table5")
    assert table.headers == ["pattern", "V100/double", "V100/float"]


# -- CLI ------------------------------------------------------------------------------


def test_cli_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "an5d" in capsys.readouterr().out


def test_cli_errors_go_to_stderr(capsys):
    assert main(["tune", "not-a-benchmark"]) == 2  # bad invocation
    captured = capsys.readouterr()
    assert "unknown benchmark" in captured.err
    assert captured.out == ""


def test_cli_campaign_gpu_aliases_hit_the_same_cache(tmp_path, capsys):
    store = str(tmp_path / "alias.sqlite")
    base = ["campaign", "run", "--benchmarks", "j2d5pt", "--dtypes", "float",
            "--store", store, "--time-steps", "100"]
    assert main(base + ["--gpus", "V100"]) == 0
    capsys.readouterr()
    assert main(base + ["--gpus", "v100,volta"]) == 0  # aliases + duplicates
    assert "cache_hit_rate: 1.0" in capsys.readouterr().out


def test_cli_campaign_run_status_report_export(tmp_path, capsys):
    store = str(tmp_path / "cli.sqlite")
    argv = [
        "campaign", "run",
        "--benchmarks", "j2d5pt",
        "--gpus", "V100",
        "--dtypes", "float",
        "--store", store,
        "--time-steps", "100",
    ]
    assert main(argv) == 0
    assert "cache_hit_rate: 0.0" in capsys.readouterr().out
    assert main(argv) == 0
    assert "cache_hit_rate: 1.0" in capsys.readouterr().out

    assert main(["campaign", "status", "--store", store]) == 0
    assert "tune" in capsys.readouterr().out

    assert main(["campaign", "report", "--store", store, "--report", "leaderboard"]) == 0
    assert "j2d5pt" in capsys.readouterr().out

    out_jsonl = str(tmp_path / "out.jsonl")
    assert main(["campaign", "export", "--store", store, "-o", out_jsonl]) == 0
    record = json.loads((tmp_path / "out.jsonl").read_text().splitlines()[0])
    assert record["pattern"] == "j2d5pt" and record["status"] == "ok"

    out_csv = str(tmp_path / "out.csv")
    assert main(["campaign", "export", "--store", store, "-o", out_csv]) == 0
    assert (tmp_path / "out.csv").read_text().startswith("key,kind,pattern")


def test_cli_campaign_missing_store(tmp_path, capsys):
    missing = str(tmp_path / "nope.sqlite")
    assert main(["campaign", "status", "--store", missing]) == 2
    assert "no campaign store" in capsys.readouterr().err
