"""Tests for the integer-set library (LinExpr, Constraint, IntegerSet)."""

from fractions import Fraction

import pytest

from repro.polyhedral.linexpr import LinExpr, sum_exprs
from repro.polyhedral.sets import Constraint, IntegerSet


# -- LinExpr -----------------------------------------------------------------


def test_linexpr_drops_zero_coefficients():
    expr = LinExpr({"x": 0, "y": 2})
    assert expr.variables == frozenset({"y"})


def test_linexpr_arithmetic():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    expr = 2 * x + y - 3
    assert expr.coefficient("x") == 2
    assert expr.coefficient("y") == 1
    assert expr.const == -3


def test_linexpr_evaluate():
    expr = LinExpr.var("x", 2) + LinExpr.constant(1)
    assert expr.evaluate({"x": 5}) == 11


def test_linexpr_evaluate_missing_variable_raises():
    with pytest.raises(KeyError):
        LinExpr.var("x").evaluate({})


def test_linexpr_substitute():
    expr = LinExpr.var("x", 2) + LinExpr.var("y")
    replaced = expr.substitute("x", LinExpr.var("z") + 1)
    assert replaced.coefficient("z") == 2
    assert replaced.const == 2
    assert "x" not in replaced.variables


def test_linexpr_rename():
    expr = LinExpr.var("x") + LinExpr.var("y")
    renamed = expr.rename({"x": "a"})
    assert renamed.variables == frozenset({"a", "y"})


def test_linexpr_negation_and_rsub():
    x = LinExpr.var("x")
    assert (-x).coefficient("x") == -1
    assert (3 - x).const == 3


def test_sum_exprs():
    total = sum_exprs([LinExpr.var("x"), LinExpr.var("x"), LinExpr.constant(2)])
    assert total.coefficient("x") == 2 and total.const == 2


# -- Constraints -------------------------------------------------------------


def test_constraint_satisfaction():
    c = Constraint.ge(LinExpr.var("x"), LinExpr.constant(3))
    assert c.satisfied({"x": 3})
    assert c.satisfied({"x": 10})
    assert not c.satisfied({"x": 2})


def test_constraint_le_and_eq():
    le = Constraint.le(LinExpr.var("x"), 5)
    eq = Constraint.eq(LinExpr.var("x"), 5)
    assert le.satisfied({"x": 5}) and le.satisfied({"x": 0})
    assert eq.satisfied({"x": 5}) and not eq.satisfied({"x": 4})


# -- IntegerSet ---------------------------------------------------------------


def test_box_membership_and_count():
    box = IntegerSet.box({"x": (0, 3), "y": (1, 2)})
    assert box.contains({"x": 0, "y": 1})
    assert not box.contains({"x": 4, "y": 1})
    assert box.count() == 4 * 2


def test_set_rejects_duplicate_variables():
    with pytest.raises(ValueError):
        IntegerSet(("x", "x"))


def test_set_rejects_unknown_constraint_variables():
    with pytest.raises(ValueError):
        IntegerSet(("x",), [Constraint.ge(LinExpr.var("y"))])


def test_intersection_counts():
    a = IntegerSet.box({"x": (0, 10)})
    b = IntegerSet.box({"x": (5, 20)})
    assert a.intersect(b).count() == 6


def test_intersection_requires_same_space():
    a = IntegerSet.box({"x": (0, 1)})
    b = IntegerSet.box({"y": (0, 1)})
    with pytest.raises(ValueError):
        a.intersect(b)


def test_emptiness_of_contradictory_constraints():
    x = LinExpr.var("x")
    empty = IntegerSet(("x",), [Constraint.ge(x, 5), Constraint.le(x, 3)])
    assert empty.is_empty()
    assert empty.count() == 0


def test_nonempty_diagonal_constraint():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    diag = IntegerSet.box({"x": (0, 4), "y": (0, 4)}).with_constraint(Constraint.ge(x - y))
    assert not diag.is_empty()
    assert diag.count() == 15  # lower triangle including the diagonal


def test_project_out_removes_variable():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    s = IntegerSet.box({"x": (0, 4), "y": (0, 4)}).with_constraint(Constraint.ge(y - x))
    projected = s.project_out("y")
    assert projected.variables == ("x",)
    assert projected.integer_bounds("x") == (0, 4)


def test_project_out_tightens_bounds():
    # x <= y and y <= 2 implies x <= 2 after eliminating y.
    x, y = LinExpr.var("x"), LinExpr.var("y")
    s = IntegerSet(
        ("x", "y"),
        [
            Constraint.ge(x),
            Constraint.ge(y - x),
            Constraint.le(y, 2),
        ],
    )
    projected = s.project_out("y")
    assert projected.integer_bounds("x") == (0, 2)


def test_project_out_unknown_variable_raises():
    with pytest.raises(ValueError):
        IntegerSet.box({"x": (0, 1)}).project_out("z")


def test_bounds_of_constrained_variable():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    s = IntegerSet.box({"x": (0, 9), "y": (0, 9)}).with_constraint(Constraint.le(x + y, 9))
    low, high = s.bounds("x")
    assert low == 0 and high == 9


def test_integer_bounds_of_unbounded_variable_raises():
    s = IntegerSet(("x",), [Constraint.ge(LinExpr.var("x"))])
    with pytest.raises(ValueError):
        s.integer_bounds("x")


def test_points_enumeration_filters_non_members():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    s = IntegerSet.box({"x": (0, 2), "y": (0, 2)}).with_constraint(Constraint.eq(x - y))
    assert sorted(s.points()) == [(0, 0), (1, 1), (2, 2)]


def test_points_enumeration_limit():
    s = IntegerSet.box({"x": (0, 1000), "y": (0, 1000)})
    with pytest.raises(ValueError):
        list(s.points(limit=100))


def test_count_non_box_set():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    s = IntegerSet.box({"x": (0, 3), "y": (0, 3)}).with_constraint(Constraint.le(x + y, 3))
    assert s.count() == 10


def test_rename_set():
    s = IntegerSet.box({"x": (0, 3)}).rename({"x": "i"})
    assert s.variables == ("i",)
    assert s.count() == 4


def test_equality_constraint_emptiness():
    x = LinExpr.var("x")
    s = IntegerSet(("x",), [Constraint.eq(x, 2), Constraint.eq(x, 3)])
    assert s.is_empty()
