"""Concurrent-writer tests for the shared SQLite result store.

The HTTP service points request-handler threads, its async worker and
external CLI runs at one store file, so the store must take concurrent
writers without losing commits — and, because results are content-addressed
and exports deterministically ordered, a store written by N racing writers
must export *byte-identical* to one written serially.
"""

import multiprocessing
import threading

import pytest

from repro.campaign.jobs import JobSpec
from repro.campaign.store import ResultStore


def _job(index: int) -> JobSpec:
    """Cheap, key-distinct jobs (the params differ, so the keys differ)."""
    return JobSpec(
        "predict", "j2d5pt", "V100", "float", (512, 512), 100, (("seq", index),)
    )


def _payload(index: int) -> dict:
    return {"value": index, "simulated_gflops": float(index)}


def _serial_export(tmp_path, indices, name="serial.jsonl"):
    """The byte-exact reference: the same commits, one writer, one thread."""
    with ResultStore(tmp_path / "serial.sqlite") as store:
        for index in indices:
            store.put(_job(index), _payload(index))
        path = store.export_jsonl(tmp_path / name)
    return path.read_bytes()


# -- connection discipline ------------------------------------------------------------


def test_file_store_runs_wal_with_busy_timeout(tmp_path):
    with ResultStore(tmp_path / "wal.sqlite") as store:
        assert store._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert store._conn.execute("PRAGMA busy_timeout").fetchone()[0] == 30_000


def test_each_thread_gets_its_own_connection(tmp_path):
    """One writer per connection: threads never share a SQLite handle."""
    with ResultStore(tmp_path / "conns.sqlite") as store:
        main_conn = store._conn
        seen = []

        def grab():
            seen.append(store._conn)

        thread = threading.Thread(target=grab)
        thread.start()
        thread.join()
        assert seen and seen[0] is not main_conn
    # The in-memory store is the exception: per-thread connections would
    # each see a private empty database, so everyone shares one handle.
    with ResultStore(":memory:") as memory_store:
        shared = memory_store._conn
        seen = []
        worker = threading.Thread(target=lambda: seen.append(memory_store._conn))
        worker.start()
        worker.join()
        assert seen[0] is shared


def test_close_shuts_down_connections_opened_by_other_threads(tmp_path):
    store = ResultStore(tmp_path / "close.sqlite")
    done = threading.Event()

    def write():
        store.put(_job(0), _payload(0))
        done.set()

    thread = threading.Thread(target=write)
    thread.start()
    thread.join()
    assert done.is_set()
    store.close()  # must not raise despite the worker thread's connection
    with pytest.raises(Exception):
        store.count()  # the store is really closed


# -- threaded writers -----------------------------------------------------------------


def test_disjoint_threaded_writers_lose_no_commits(tmp_path):
    writers, per_writer = 8, 25
    store = ResultStore(tmp_path / "disjoint.sqlite")
    errors = []

    def write(base: int) -> None:
        try:
            for offset in range(per_writer):
                index = base * per_writer + offset
                store.put(_job(index), _payload(index))
        except Exception as error:  # noqa: BLE001 — surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=write, args=(base,)) for base in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert store.count() == writers * per_writer  # no lost commits
    concurrent = store.export_jsonl(tmp_path / "concurrent.jsonl").read_bytes()
    store.close()
    assert concurrent == _serial_export(tmp_path, range(writers * per_writer))


def test_overlapping_threaded_writers_converge(tmp_path):
    """All writers racing on the SAME keys must still converge byte-exactly."""
    writers, jobs = 8, 20
    store = ResultStore(tmp_path / "overlap.sqlite")
    start_together = threading.Barrier(writers)
    errors = []

    def write() -> None:
        try:
            start_together.wait()
            for index in range(jobs):
                store.put(_job(index), _payload(index))
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=write) for _ in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert store.count() == jobs  # content-addressed: replacement, not duplication
    concurrent = store.export_jsonl(tmp_path / "overlap.jsonl").read_bytes()
    store.close()
    assert concurrent == _serial_export(tmp_path, range(jobs))


def test_readers_run_alongside_writers(tmp_path):
    """WAL: status reads from other threads never block or crash a writer."""
    store = ResultStore(tmp_path / "readers.sqlite")
    stop = threading.Event()
    errors = []

    def read() -> None:
        keys = [_job(i).key() for i in range(50)]
        try:
            while not stop.is_set():
                store.statuses(keys)
                store.status_counts()
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    readers = [threading.Thread(target=read) for _ in range(3)]
    for thread in readers:
        thread.start()
    for index in range(50):
        store.put(_job(index), _payload(index))
    stop.set()
    for thread in readers:
        thread.join()
    assert errors == []
    assert store.statuses([_job(7).key()]) == {_job(7).key(): "ok"}
    store.close()


# -- cross-process writers ------------------------------------------------------------


def _process_writer(path: str, base: int, per_writer: int) -> None:
    store = ResultStore(path)
    try:
        for offset in range(per_writer):
            index = base * per_writer + offset
            store.put(_job(index), _payload(index))
    finally:
        store.close()


def test_processes_share_one_store_file(tmp_path):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork start method on this platform")
    context = multiprocessing.get_context("fork")
    path = str(tmp_path / "processes.sqlite")
    writers, per_writer = 4, 15
    processes = [
        context.Process(target=_process_writer, args=(path, base, per_writer))
        for base in range(writers)
    ]
    try:
        for process in processes:
            process.start()
    except OSError:
        pytest.skip("process spawn unavailable in this sandbox")
    for process in processes:
        process.join(60)
    assert all(process.exitcode == 0 for process in processes)
    with ResultStore(path) as store:
        assert store.count() == writers * per_writer
        merged = store.export_jsonl(tmp_path / "processes.jsonl").read_bytes()
    assert merged == _serial_export(tmp_path, range(writers * per_writer))
