"""Tests for BlockingConfig validation and derived quantities."""

import pytest

from repro.core.config import BlockingConfig, ConfigurationError, sconf_configuration


def test_nthr_is_product_of_block_sizes():
    assert BlockingConfig(bT=4, bS=(256,)).nthr == 256
    assert BlockingConfig(bT=4, bS=(32, 16)).nthr == 512


def test_halo_and_compute_region():
    config = BlockingConfig(bT=4, bS=(128,))
    assert config.halo_per_side(1) == 4
    assert config.compute_region(1) == (120,)
    assert config.compute_region(2) == (112,)


def test_invalid_bt_rejected():
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=0, bS=(128,))


def test_empty_bs_rejected():
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=1, bS=())


def test_nonpositive_bs_rejected():
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=1, bS=(0,))


def test_bad_hs_rejected():
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=1, bS=(32,), hS=0)


def test_register_limit_range_checked():
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=1, bS=(32,), register_limit=8)
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=1, bS=(32,), register_limit=300)
    assert BlockingConfig(bT=1, bS=(32,), register_limit=64).register_limit == 64


def test_validate_dimensionality(j2d5pt, star3d1r):
    BlockingConfig(bT=2, bS=(64,)).validate(j2d5pt)
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=2, bS=(64, 64)).validate(j2d5pt)
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=2, bS=(64,)).validate(star3d1r)


def test_validate_thread_block_limit(star3d1r):
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=1, bS=(64, 64)).validate(star3d1r)


def test_validate_compute_region_must_be_positive(j2d9pt):
    # radius 2, bT=8 -> halo 16 per side needs bS > 32.
    with pytest.raises(ConfigurationError):
        BlockingConfig(bT=8, bS=(32,)).validate(j2d9pt)
    BlockingConfig(bT=8, bS=(64,)).validate(j2d9pt)


def test_is_valid_mirrors_validate(j2d5pt):
    assert BlockingConfig(bT=4, bS=(64,)).is_valid(j2d5pt)
    assert not BlockingConfig(bT=40, bS=(64,)).is_valid(j2d5pt)


def test_with_register_limit_and_with_bt_are_pure():
    base = BlockingConfig(bT=4, bS=(128,))
    assert base.with_register_limit(64).register_limit == 64
    assert base.register_limit is None
    assert base.with_bT(8).bT == 8
    assert base.bT == 4


def test_star_optimization_selection(j2d5pt, box2d1r):
    auto = BlockingConfig(bT=2, bS=(64,))
    assert auto.use_star_optimization(j2d5pt)
    assert not auto.use_star_optimization(box2d1r)
    forced_off = BlockingConfig(bT=2, bS=(64,), star_opt=False)
    assert not forced_off.use_star_optimization(j2d5pt)


def test_associative_optimization_selection(j2d5pt, box2d1r, gradient2d):
    auto = BlockingConfig(bT=2, bS=(64,))
    # star stencils prefer the diagonal-access-free path.
    assert not auto.use_associative_optimization(j2d5pt)
    assert auto.use_associative_optimization(box2d1r)
    assert not auto.use_associative_optimization(gradient2d)
    forced = BlockingConfig(bT=2, bS=(64,), associative_opt=True)
    assert forced.use_associative_optimization(gradient2d)


def test_describe_mentions_parameters():
    text = BlockingConfig(bT=4, bS=(32, 16), hS=128, register_limit=64).describe()
    assert "bT=4" in text and "32x16" in text and "hS=128" in text and "regs=64" in text


def test_sconf_configuration_shapes(j2d5pt, star3d1r):
    conf2d = sconf_configuration(j2d5pt)
    assert conf2d.bT == 4 and len(conf2d.bS) == 1
    conf3d = sconf_configuration(star3d1r)
    assert conf3d.bT == 4 and conf3d.bS == (32, 32) and conf3d.hS is None
