"""Unit tests for the expression IR."""

import math

import pytest

from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    GridRead,
    UnaryOp,
    count_operations,
    evaluate,
    grid_reads,
    simplify,
    substitute,
    walk,
)


def test_const_stores_value():
    assert Const(3.5).value == 3.5


def test_grid_read_normalises_offset_to_ints():
    read = GridRead("A", (1.0, -2.0))
    assert read.offset == (1, -2)
    assert read.ndim == 2


def test_binop_rejects_unknown_operator():
    with pytest.raises(ValueError):
        BinOp("^", Const(1.0), Const(2.0))


def test_unary_rejects_unknown_operator():
    with pytest.raises(ValueError):
        UnaryOp("!", Const(1.0))


def test_call_rejects_unknown_function():
    with pytest.raises(ValueError):
        Call("tan", (Const(1.0),))


def test_operator_sugar_builds_tree():
    a = GridRead("A", (0, 0))
    expr = 2.0 * a + 1.0
    assert isinstance(expr, BinOp)
    assert expr.op == "+"
    assert isinstance(expr.lhs, BinOp)
    assert expr.lhs.op == "*"


def test_operator_sugar_division_and_negation():
    a = GridRead("A", (0, 0))
    expr = (-a) / 4.0
    assert isinstance(expr, BinOp) and expr.op == "/"
    assert isinstance(expr.lhs, UnaryOp)


def test_walk_visits_every_node():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (1, 0))
    expr = BinOp("+", BinOp("*", Const(2.0), a), b)
    kinds = [type(node).__name__ for node in walk(expr)]
    assert kinds.count("BinOp") == 2
    assert kinds.count("GridRead") == 2
    assert kinds.count("Const") == 1


def test_grid_reads_preserves_duplicates():
    a = GridRead("A", (0, 0))
    expr = BinOp("*", a, a)
    assert len(grid_reads(expr)) == 2


def test_count_operations_by_symbol():
    a = GridRead("A", (0, 0))
    expr = BinOp("/", BinOp("+", BinOp("*", Const(2.0), a), a), Const(3.0))
    counts = count_operations(expr)
    assert counts == {"/": 1, "+": 1, "*": 1}


def test_evaluate_simple_expression():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (1, 0))
    expr = BinOp("+", BinOp("*", Const(2.0), a), b)
    value = evaluate(expr, lambda read: 3.0 if read.offset == (0, 0) else 4.0)
    assert value == pytest.approx(10.0)


def test_evaluate_calls_and_negation():
    expr = UnaryOp("-", Call("sqrt", (Const(16.0),)))
    assert evaluate(expr, lambda _: 0.0) == pytest.approx(-4.0)


def test_evaluate_division():
    expr = BinOp("/", Const(7.0), Const(2.0))
    assert evaluate(expr, lambda _: 0.0) == pytest.approx(3.5)


def test_substitute_replaces_reads():
    a = GridRead("A", (0, 0))
    b = GridRead("A", (1, 0))
    expr = BinOp("+", a, b)
    replaced = substitute(expr, {a: Const(5.0)})
    assert evaluate(replaced, lambda _: 1.0) == pytest.approx(6.0)


def test_substitute_preserves_structure_for_calls():
    a = GridRead("A", (0, 0))
    expr = Call("sqrt", (BinOp("*", a, a),))
    replaced = substitute(expr, {a: Const(3.0)})
    assert evaluate(replaced, lambda _: 0.0) == pytest.approx(3.0)


def test_simplify_folds_constants():
    expr = BinOp("+", Const(2.0), BinOp("*", Const(3.0), Const(4.0)))
    assert simplify(expr) == Const(14.0)


def test_simplify_strips_identities():
    a = GridRead("A", (0, 0))
    assert simplify(BinOp("*", Const(1.0), a)) == a
    assert simplify(BinOp("+", a, Const(0.0))) == a
    assert simplify(BinOp("/", a, Const(1.0))) == a


def test_simplify_double_negation():
    a = GridRead("A", (0, 0))
    assert simplify(UnaryOp("-", UnaryOp("-", a))) == a


def test_simplify_constant_call():
    assert simplify(Call("sqrt", (Const(9.0),))) == Const(3.0)


def test_expressions_are_hashable_value_objects():
    assert GridRead("A", (0, 1)) == GridRead("A", (0, 1))
    assert hash(Const(2.0)) == hash(Const(2.0))
    assert GridRead("A", (0, 1)) != GridRead("A", (1, 0))


def test_as_expr_rejects_strings():
    a = GridRead("A", (0, 0))
    with pytest.raises(TypeError):
        _ = a + "nope"
