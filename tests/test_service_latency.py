"""Tests for the interactive latency tier: synchronous /predict and /tune,
single-flight caching, read-through report/export caches and their
invalidation on store writes, and campaign admission control (429 +
``Retry-After``) end to end through the cluster client.

Everything except the client round-trip drives the app socket-free via
``CampaignApp.handle`` — same code path as the HTTP server, no ports.
"""

import json
import threading
import time

import pytest

import repro.cluster.client as cluster_client_module
from repro.campaign.jobs import JobSpec, _json_safe, run_job
from repro.cluster import ClusterClient
from repro.cluster.client import ClusterHTTPError, _parse_retry_after
from repro.obs import MetricsRegistry, SingleFlightCache
from repro.obs.metrics import parse_prometheus
from repro.obs.top import cache_ratio, instance_row, render
from repro.service import CampaignApp, CampaignServer, Request, WorkerSettings
from repro.stencils.library import DEFAULT_2D_GRID, DEFAULT_TIME_STEPS

SPEC_JSON = {
    "benchmarks": ["j2d5pt", "star3d1r"],
    "gpus": ["V100"],
    "dtypes": ["float"],
    "kinds": ["tune"],
    "time_steps": 100,
    "interior_2d": [512, 512],
    "interior_3d": [48, 48, 48],
    "top_k": 2,
}


@pytest.fixture()
def app(tmp_path):
    application = CampaignApp(
        tmp_path / "svc.sqlite", WorkerSettings(workers=1, concurrency=2)
    )
    application.start()
    yield application
    application.close()


def _json(response):
    assert response.status == 200, response.body
    return json.loads(response.body)


def _submit(app, spec=SPEC_JSON):
    response = app.handle(
        Request("POST", "/campaigns", body=json.dumps(spec).encode())
    )
    assert response.status == 202, response.body
    return json.loads(response.body)


def _poll_done(app, cid, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = _json(app.handle(Request("GET", f"/campaigns/{cid}")))
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"campaign {cid} did not settle")


# -- single-flight cache --------------------------------------------------------------


def test_single_flight_builds_once_under_contention():
    registry = MetricsRegistry()
    cache = SingleFlightCache("contended", capacity=4, metrics=registry)
    builds = []
    gate = threading.Event()

    def builder():
        builds.append(threading.get_ident())
        gate.wait(5.0)  # hold every follower until all threads arrived
        return "value"

    outcomes = []

    def caller():
        outcomes.append(cache.get_or_build("key", builder))

    threads = [threading.Thread(target=caller) for _ in range(8)]
    for thread in threads:
        thread.start()
    while not builds:  # leader entered the builder
        time.sleep(0.001)
    time.sleep(0.05)  # let the other 7 become followers
    gate.set()
    for thread in threads:
        thread.join(timeout=10.0)

    assert len(builds) == 1  # exactly one builder ran
    assert [value for value, _ in outcomes] == ["value"] * 8
    hits = [hit for _, hit in outcomes]
    assert hits.count(False) == 1 and hits.count(True) == 7


def test_single_flight_failed_build_releases_followers():
    cache = SingleFlightCache("flaky", metrics=MetricsRegistry())
    attempts = []

    def failing():
        attempts.append(1)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        cache.get_or_build("key", failing)
    # The failure was not cached: the next caller builds (successfully).
    value, hit = cache.get_or_build("key", lambda: 42)
    assert (value, hit) == (42, False)
    assert cache.get_or_build("key", lambda: 43) == (42, True)


def test_single_flight_lru_eviction_counted():
    registry = MetricsRegistry()
    cache = SingleFlightCache("tiny", capacity=2, metrics=registry)
    for index in range(3):
        cache.put(index, index)
    assert len(cache) == 2
    assert cache.get(0) == (None, False)  # oldest evicted
    assert cache.get(2) == (2, True)


# -- synchronous fast path ------------------------------------------------------------


def test_predict_endpoint_matches_run_job(app):
    response = app.handle(
        Request("POST", "/predict", body=json.dumps({"pattern": "j2d5pt"}).encode())
    )
    answer = _json(response)
    assert answer["cached"] is False

    spec = JobSpec(
        kind="predict", pattern="j2d5pt", gpu="V100", dtype="float",
        interior=DEFAULT_2D_GRID, time_steps=DEFAULT_TIME_STEPS,
    )
    expected = {str(k): _json_safe(v) for k, v in run_job(spec).items()}
    assert answer["result"] == expected
    assert answer["key"] == spec.key()

    # Identical request: answered from the hot cache, same payload.
    again = _json(app.handle(
        Request("POST", "/predict", body=json.dumps({"pattern": "j2d5pt"}).encode())
    ))
    assert again["cached"] is True
    assert again["result"] == expected


def test_tune_endpoint_matches_run_job(app):
    body = json.dumps({"pattern": "j2d5pt", "top_k": 3}).encode()
    answer = _json(app.handle(Request("POST", "/tune", body=body)))

    spec = JobSpec(
        kind="tune", pattern="j2d5pt", gpu="V100", dtype="float",
        interior=DEFAULT_2D_GRID, time_steps=DEFAULT_TIME_STEPS,
        params=(("top_k", 3),),
    )
    expected = {str(k): _json_safe(v) for k, v in run_job(spec).items()}
    assert answer["result"] == expected
    # The fast path never writes the store: tuning synchronously must not
    # have committed a row.
    assert app.store.count() == 0


def test_predict_rejects_bad_requests(app):
    def status_of(payload):
        return app.handle(
            Request("POST", "/predict", body=json.dumps(payload).encode())
        ).status

    assert status_of({"pattern": "nope"}) == 400  # unknown benchmark
    assert status_of({"pattern": "j2d5pt", "bogus": 1}) == 400  # unknown field
    assert status_of({"pattern": "j2d5pt", "bT": 0}) == 400  # below minimum
    assert status_of({"pattern": "j2d5pt", "bS": [999999, 4]}) == 400  # invalid config
    assert status_of({}) == 400  # pattern required


def test_predict_metrics_exposed(app):
    for _ in range(3):
        app.handle(
            Request("POST", "/predict", body=json.dumps({"pattern": "j2d5pt"}).encode())
        )
    samples = parse_prometheus(app.handle(Request("GET", "/metrics")).body.decode())
    hits = {
        labels["cache"]: value for labels, value in samples["cache_hits_total"]
    }
    misses = {
        labels["cache"]: value for labels, value in samples["cache_misses_total"]
    }
    assert hits.get("hot_predict", 0) >= 2
    assert misses.get("hot_predict", 0) >= 1

    # The `an5d top` row folds those counters into one CACHE column.
    row = instance_row(
        {"id": "i1", "role": "solo", "live": True, "url": ""}, samples
    )
    ratio = cache_ratio(row)
    assert ratio is not None and 0.0 < ratio < 1.0
    assert "CACHE" in render([row]).splitlines()[0]
    assert cache_ratio({"cache_hits": 0, "cache_misses": 0}) is None


# -- read-through report/export caches ------------------------------------------------


def test_report_cache_invalidated_by_store_writes(app):
    cid = _submit(app)["id"]
    assert _poll_done(app, cid)["state"] == "done"
    report_request = Request("GET", f"/campaigns/{cid}/report")

    warm = _json(app.handle(report_request))
    # Warm read is cached; bypassing the cache renders the same report.
    assert warm == _json(app.handle(
        Request("GET", f"/campaigns/{cid}/report", query={"cache": "off"})
    ))

    # Mutate one of the campaign's rows through the wire-commit path
    # (delete + commit_records, the cluster result path) and check the
    # cached report does not go stale.
    victim = app.store.query(kind="tune")[0]
    app.store.delete(victim.key)
    record = {
        "key": victim.key, "kind": victim.kind, "pattern": victim.pattern,
        "gpu": victim.gpu, "dtype": victim.dtype, "grid": victim.grid,
        "time_steps": victim.time_steps, "code_version": victim.code_version,
        "status": "ok",
        "payload": {**victim.payload, "tuned_gflops": 9999.0},
        "elapsed_s": victim.elapsed_s,
    }
    assert app.store.commit_records([record]) == 1

    fresh = _json(app.handle(report_request))
    assert fresh != warm  # the write invalidated the materialised report
    assert "9999.0" in json.dumps(fresh)
    assert fresh == _json(app.handle(
        Request("GET", f"/campaigns/{cid}/report", query={"cache": "off"})
    ))


def test_export_stays_byte_identical_under_concurrent_commits(app):
    cid = _submit(app)["id"]
    assert _poll_done(app, cid)["state"] == "done"
    path = f"/campaigns/{cid}/export"

    def export_bytes(cache):
        response = app.handle(Request("GET", path, query={"cache": cache}))
        assert response.status == 200
        return b"".join(response.stream), response.headers["ETag"]

    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                export_bytes("on")
        except Exception as error:  # noqa: BLE001 — surfaced via `errors`
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    # Concurrent writers: unrelated rows committed while readers stream.
    for index in range(10):
        spec = JobSpec(
            kind="predict", pattern="j2d5pt", gpu="V100", dtype="float",
            interior=(256, 256), time_steps=100 + index,
        )
        app.store.put(spec, {"marker": index})
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    assert not errors

    # After the writes settle, cached and uncached exports agree byte for
    # byte (and the new rows never leaked into this campaign's scope).
    cached, cached_etag = export_bytes("on")
    uncached, uncached_etag = export_bytes("off")
    assert cached == uncached
    assert cached_etag == uncached_etag
    assert b"marker" not in cached


def test_job_keys_memoised_per_record(app):
    cid = _submit(app)["id"]
    _poll_done(app, cid)
    first = app.worker.job_keys(cid)
    record = app.worker.get(cid)
    assert record.job_keys_cache is not None
    assert app.worker.job_keys(cid) == first
    assert app.worker.job_keys("missing") is None


# -- admission control ----------------------------------------------------------------


def test_queue_full_answers_429_with_retry_after(app):
    app.worker.settings.max_queued = 1
    first = _submit(app)  # fills the single queue slot
    distinct = dict(SPEC_JSON, time_steps=101)
    response = app.handle(
        Request("POST", "/campaigns", body=json.dumps(distinct).encode())
    )
    assert response.status == 429
    assert float(response.headers["Retry-After"]) >= 1.0
    payload = json.loads(response.body)
    assert payload["retry_after_s"] >= 1
    assert "queue is full" in payload["error"]

    # Idempotent re-post of the in-flight campaign is deduped, never 429d.
    assert _submit(app)["id"] == first["id"]

    # The interactive tier is not behind the campaign queue.
    predict = app.handle(
        Request("POST", "/predict", body=json.dumps({"pattern": "j2d5pt"}).encode())
    )
    assert predict.status == 200

    app.worker.settings.max_queued = None
    _poll_done(app, first["id"])


def test_cluster_client_honours_retry_after(tmp_path, monkeypatch):
    naps = []
    monkeypatch.setattr(cluster_client_module.time, "sleep", naps.append)
    with CampaignServer(
        host="127.0.0.1", port=0, store=tmp_path / "svc.sqlite",
        settings=WorkerSettings(workers=1, concurrency=1, max_queued=1),
    ) as server:
        # Gate the first campaign's execution open-ended: the queue slot must
        # still be occupied when the second submission arrives, however slowly
        # this machine schedules the client between the two posts.
        gate = threading.Event()
        real_scheduler = server.app.worker._scheduler

        def gated_scheduler(spec, plan=None, campaign_id=None):
            scheduler = real_scheduler(spec, plan, campaign_id=campaign_id)
            original_run = scheduler.run
            scheduler.run = lambda: (gate.wait(timeout=60), original_run())[1]
            return scheduler

        monkeypatch.setattr(server.app.worker, "_scheduler", gated_scheduler)
        try:
            client = ClusterClient(retries=1)
            accepted = client.post_json(server.url + "/campaigns", SPEC_JSON)
            assert accepted["state"] in ("queued", "running")
            distinct = dict(SPEC_JSON, time_steps=101)
            with pytest.raises(ClusterHTTPError) as caught:
                client.post_json(server.url + "/campaigns", distinct)
        finally:
            gate.set()  # release the worker so server shutdown is prompt
    assert caught.value.status == 429
    assert caught.value.retry_after is not None and caught.value.retry_after >= 1.0
    assert caught.value.retryable
    # The retry loop slept exactly the server's hint, not its own backoff.
    assert naps == [pytest.approx(caught.value.retry_after)]


def test_parse_retry_after_variants():
    class Headers(dict):
        pass

    assert _parse_retry_after(None) is None
    assert _parse_retry_after(Headers()) is None
    assert _parse_retry_after(Headers({"Retry-After": "7"})) == 7.0
    assert _parse_retry_after(Headers({"Retry-After": " 2.5 "})) == 2.5
    assert _parse_retry_after(Headers({"Retry-After": "-3"})) is None
    assert _parse_retry_after(
        Headers({"Retry-After": "Fri, 07 Aug 2026 12:00:00 GMT"})
    ) is None


def test_client_caps_server_retry_after(monkeypatch):
    naps = []
    client = ClusterClient()
    monkeypatch.setattr(cluster_client_module.time, "sleep", naps.append)
    client._sleep(0, retry_after=10_000.0)
    assert naps == [ClusterClient.MAX_RETRY_AFTER_S]
